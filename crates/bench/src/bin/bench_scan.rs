//! Full-chip scanning benchmark: generates a stitched chip with
//! [`generate_chip`], sweeps it with the streaming [`Scanner`] in every
//! mode, and writes `BENCH_scan.json` — windows/second for the
//! prefix-reuse scanner against the naive crop-and-classify baselines,
//! per stride.
//!
//! Modes:
//!
//! * `naive_full`    — crop every window, run the full M-level plan, no
//!   cascade.  The honest "no scanner" baseline the reuse speedup is
//!   measured against.
//! * `naive_cascade` — crop every window, triage then confirm (the
//!   equivalence-test oracle).
//! * `scan`          — prefix-reuse with duplicate-window caching (the
//!   production path).
//! * `scan_nodedup`  — prefix-reuse alone, isolating the slab win from
//!   the cache win.
//!
//! ```sh
//! cargo run --release -p hotspot-bench --bin bench_scan -- [OUT.json] [--quick] [--check]
//! ```
//!
//! `--quick` shrinks the chip and sweeps one stride (CI smoke);
//! `--check` exits non-zero unless reuse beats `naive_full` by ≥ 2× at
//! stride 64.

use hotspot_bnn::{BnnResNet, NetConfig, PackedBnn, ScanConfig, ScanReport, Scanner};
use hotspot_layout_gen::{generate_chip, Chip, ChipSpec, ClipGenerator};
use hotspot_tensor::Workspace;
use std::fmt::Write as _;
use std::time::Instant;

/// Background/site labelling for the benchmark chip: pattern density.
/// The benchmark measures throughput, not accuracy, so a cheap
/// deterministic criterion beats running the litho oracle thousands of
/// times during generation.
const DENSITY_HOTSPOT: f64 = 0.30;

/// Fraction of windows the cascade escalates to the full confirm.
/// Deployments tune the threshold for an escalation budget; the
/// benchmark does the same from the (seeded, deterministic) triage
/// margin distribution rather than hard-coding a magic number for a
/// randomly initialised model.
const ESCALATION_QUANTILE: f64 = 0.10;

struct Row {
    stride: usize,
    mode: &'static str,
    windows: usize,
    windows_per_sec: f64,
    regions: usize,
    hotspots_per_mm2: f64,
    escalated: usize,
    reused: usize,
    dedup_hits: usize,
}

fn bench_mode(
    scanner: &Scanner<'_>,
    chip: &Chip,
    mode: &'static str,
    stride: usize,
    area_mm2: f64,
) -> Row {
    let mut ws = Workspace::new();
    let run = |ws: &mut Workspace| -> ScanReport {
        match mode {
            "naive_full" => scanner.scan_naive_full(&chip.image, ws),
            "naive_cascade" => scanner.scan_naive(&chip.image, ws),
            "scan" | "scan_nodedup" => scanner.scan(&chip.image, ws),
            other => panic!("unknown mode {other}"),
        }
    };
    // One warm-up pass (allocations, page faults), then time the best
    // of two measured passes.
    let report = run(&mut ws);
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let start = Instant::now();
        let r = run(&mut ws);
        best = best.min(start.elapsed().as_secs_f64());
        assert_eq!(r.windows, report.windows);
    }
    Row {
        stride,
        mode,
        windows: report.windows,
        windows_per_sec: report.windows as f64 / best,
        regions: report.regions.len(),
        hotspots_per_mm2: report.regions.len() as f64 / area_mm2,
        escalated: report.escalated,
        reused: report.reused,
        dedup_hits: report.dedup_hits,
    }
}

fn main() {
    let mut out_path = String::from("BENCH_scan.json");
    let mut quick = false;
    let mut check = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            other => out_path = other.to_string(),
        }
    }

    // M = 3 residual levels: the paper's accuracy configuration.  The
    // naive baseline pays the full M = 3 plan on every crop — exactly
    // what deploying the detector without a scanner costs — while the
    // cascade triages at M = 1 and confirms only low-margin windows.
    let config = NetConfig::paper_12layer().with_levels(3);
    let window = config.input_size;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2019);
    let model = PackedBnn::compile(&BnnResNet::new(&config, &mut rng));

    // 1280 nm clips at 10 nm/px → 128 px cells, one model window each.
    let cells = if quick { 4 } else { 8 };
    let sites = if quick { 2 } else { 6 };
    let clips = ClipGenerator::new(1280);
    let spec = ChipSpec::new(cells, sites, 20260808);
    let chip = generate_chip(&spec, &clips, |layout, win| {
        layout.density(win) > DENSITY_HOTSPOT
    })
    .expect("chip generation");
    let area_mm2 = chip.area_mm2();
    println!(
        "scan benchmark: {}x{} px chip ({:.1} µm²), {} hotspot sites, window {}",
        chip.width_px,
        chip.height_px,
        area_mm2 * 1e6,
        chip.sites.len(),
        window
    );

    // Tune the cascade threshold to the escalation budget: the
    // ESCALATION_QUANTILE-th percentile of |triage margin| over the
    // stride-64 grid.  Deterministic — model, chip, and grid are all
    // seeded.
    let threshold = {
        let mut cfg = ScanConfig::new(64);
        cfg.triage_only = true;
        let scanner = Scanner::new(&model, window, cfg);
        let mut ws = Workspace::new();
        let report = scanner.scan(&chip.image, &mut ws);
        let mut margins: Vec<f32> = report.verdicts.iter().map(|v| v.margin.abs()).collect();
        margins.sort_by(f32::total_cmp);
        let idx = ((margins.len() as f64 - 1.0) * ESCALATION_QUANTILE) as usize;
        margins[idx]
    };
    println!(
        "cascade threshold {threshold:.4} (~{:.0}% escalation)",
        ESCALATION_QUANTILE * 100.0
    );

    let strides: &[usize] = if quick { &[64] } else { &[32, 64, 128] };
    let modes: &[&'static str] = &["naive_full", "naive_cascade", "scan", "scan_nodedup"];
    println!(
        "{:>7} {:>14} {:>9} {:>13} {:>8} {:>7} {:>7} {:>7}",
        "stride", "mode", "windows", "windows/s", "regions", "escal", "reused", "dedup"
    );
    let mut rows = Vec::new();
    for &stride in strides {
        for &mode in modes {
            let mut config = ScanConfig::new(stride);
            config.cascade_threshold = threshold;
            if mode == "scan_nodedup" {
                config.dedup = false;
            }
            let scanner = Scanner::new(&model, window, config);
            let row = bench_mode(&scanner, &chip, mode, stride, area_mm2);
            println!(
                "{:>7} {:>14} {:>9} {:>13.1} {:>8} {:>7} {:>7} {:>7}",
                row.stride,
                row.mode,
                row.windows,
                row.windows_per_sec,
                row.regions,
                row.escalated,
                row.reused,
                row.dedup_hits
            );
            rows.push(row);
        }
    }

    // Window batches of 2+ route through the bit-sliced XNOR-GEMM
    // tier when the triage plan compiled one; record which tier
    // produced these numbers.
    let gemm_tier = model.plan((window, window)).gemm_tier();
    println!(
        "batched conv tier: {}",
        if gemm_tier { "xnor-gemm" } else { "per-item" }
    );

    let mut json = String::new();
    json.push_str("{\n  \"benchmark\": \"scan\",\n");
    let _ = writeln!(json, "  \"window\": {window},");
    let _ = writeln!(json, "  \"gemm_tier\": {gemm_tier},");
    let _ = writeln!(json, "  \"levels\": {},", config.levels);
    let _ = writeln!(json, "  \"cascade_threshold\": {threshold:.6},");
    let _ = writeln!(
        json,
        "  \"chip_px\": [{}, {}],",
        chip.width_px, chip.height_px
    );
    let _ = writeln!(json, "  \"chip_area_mm2\": {area_mm2:.6},");
    let _ = writeln!(json, "  \"hotspot_sites\": {},", chip.sites.len());
    json.push_str("  \"scan\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"stride\": {}, \"mode\": \"{}\", \"windows\": {}, \
             \"windows_per_sec\": {:.1}, \"regions\": {}, \
             \"hotspots_per_mm2\": {:.3}, \"escalated\": {}, \
             \"reused\": {}, \"dedup_hits\": {}}}{}",
            r.stride,
            r.mode,
            r.windows,
            r.windows_per_sec,
            r.regions,
            r.hotspots_per_mm2,
            r.escalated,
            r.reused,
            r.dedup_hits,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");

    if check {
        let at = |mode: &str| {
            rows.iter()
                .find(|r| r.stride == 64 && r.mode == mode)
                .unwrap_or_else(|| panic!("no stride-64 {mode} row"))
                .windows_per_sec
        };
        let speedup = at("scan") / at("naive_full");
        println!("stride-64 reuse speedup over naive_full: {speedup:.2}x");
        // The quick chip is too small to amortize the slab fully, so
        // the CI smoke floor sits below the full-run acceptance gate.
        let floor = if quick { 1.7 } else { 2.0 };
        assert!(
            speedup >= floor,
            "reuse speedup {speedup:.2}x below the {floor}x floor"
        );
    }
}
