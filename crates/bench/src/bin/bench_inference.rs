//! Per-layer inference benchmark: runs the paper's 12-layer network
//! through the packed XNOR execution plan with the slot profiler
//! enabled and writes `BENCH_inference.json` — a machine-readable
//! breakdown of where inference time goes, layer by layer, built from
//! the telemetry metrics registry.
//!
//! Timing does not need trained weights, so the network is randomly
//! initialised; the binarized kernels cost the same either way.
//!
//! ```sh
//! cargo run --release -p hotspot-bench --bin bench_inference [OUT.json] [CLIPS] [RUNS]
//! ```

use hotspot_bnn::{dispatch_report, BnnResNet, NetConfig, PackedBnn};
use hotspot_telemetry::{metrics, MetricsRegistry, MonotonicClock, Timer};
use hotspot_tensor::Workspace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args.next().unwrap_or_else(|| "BENCH_inference.json".into());
    let clips: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);
    let runs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);

    let config = NetConfig::paper_12layer();
    let side = config.input_size;
    let mut rng = StdRng::seed_from_u64(2019);
    let net = BnnResNet::new(&config, &mut rng);
    let packed = PackedBnn::compile(&net);
    let plan = packed.plan((side, side));

    // Random ±1 clips: the XNOR kernels are data-independent in cost.
    let plane = side * side;
    let mut state = 0xb5e7_u32;
    let input: Vec<f32> = (0..clips * plane)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            if state & 0x8000 == 0 {
                1.0
            } else {
                -1.0
            }
        })
        .collect();
    let mut logits = vec![0.0f32; clips * 2];
    let mut ws = Workspace::new();

    // Warm-up grows the workspace to steady state and faults in pages.
    plan.run_into(&input, clips, &mut ws, &mut logits);

    let clock = MonotonicClock;
    let mut prof = plan.profiler();
    let batch_hist = metrics::global().histogram(
        "bench_inference_batch_duration_ns",
        &metrics::duration_ns_buckets(),
    );
    let total_timer = Timer::start(&clock);
    for _ in 0..runs {
        let t = Timer::start(&clock);
        plan.run_into_profiled(&input, clips, &mut ws, &mut logits, &mut prof);
        batch_hist.observe(t.elapsed_ns() as f64);
    }
    let wall_ns = total_timer.elapsed_ns();

    // Export the per-layer totals as labelled counters so the registry
    // snapshot below carries the breakdown too.
    prof.export_to(metrics::global(), "inference_layer", "layer");
    metrics::global()
        .gauge("bench_inference_clips_per_sec")
        .set((clips * runs) as f64 / (wall_ns as f64 / 1e9));

    let report = prof.report();
    let weight_layers = report
        .iter()
        .filter(|s| s.name == "stem" || s.name.ends_with(".conv1") || s.name.ends_with(".conv2"))
        .count()
        + 1; // + fc
    assert_eq!(
        weight_layers, 12,
        "expected the paper's 12 weight layers in the profile: {report:?}"
    );

    let dispatch = dispatch_report();
    let clips_per_sec = (clips * runs) as f64 / (wall_ns as f64 / 1e9);

    let mut json = String::new();
    json.push_str("{\n  \"benchmark\": \"packed_inference\",\n");
    let _ = writeln!(json, "  \"input_size\": {side},");
    let _ = write!(json, "  \"clips\": {clips},\n  \"runs\": {runs},\n");
    let _ = writeln!(json, "  \"wall_ns\": {wall_ns},");
    let _ = writeln!(json, "  \"clips_per_sec\": {clips_per_sec:.1},");
    let _ = writeln!(json, "  \"kernel_backend\": \"{}\",", plan.backend().name());
    let _ = writeln!(json, "  \"weight_layers\": {weight_layers},");
    json.push_str("  \"layers\": [\n");
    for (i, slot) in report.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"calls\": {}, \"total_ns\": {}, \"mean_ns\": {:.1}}}{}",
            slot.name,
            slot.calls,
            slot.total_ns,
            slot.mean_ns(),
            if i + 1 < report.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"metrics\": ");
    json.push_str(&metrics::global().to_json());
    json.push_str("\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark json");

    println!("wrote {out_path} ({clips} clips x {runs} runs, {side}x{side} input)");
    println!(
        "{:<16} {:>8} {:>14} {:>12}",
        "layer", "calls", "total_ns", "mean_ns"
    );
    for slot in &report {
        println!(
            "{:<16} {:>8} {:>14} {:>12.1}",
            slot.name,
            slot.calls,
            slot.total_ns,
            slot.mean_ns()
        );
    }
    let total: u64 = prof.total_ns();
    println!(
        "total {:.3} ms over {} runs ({:.1} clips/s)",
        total as f64 / 1e6,
        runs,
        clips_per_sec
    );
    println!("{}", dispatch.summary());
    // A local-registry sanity check keeps the exported names honest.
    let check = MetricsRegistry::new();
    prof.export_to(&check, "inference_layer", "layer");
    assert!(check.to_prometheus().contains("inference_layer_ns_total"));
}
