//! Regenerates the paper's tables, figures and ablations.
//!
//! ```text
//! tables --table 2 [--scale 0.02]     # Table 2: dataset statistics
//! tables --table 3 [--scale 0.02]     # Table 3: detector comparison
//! tables --figure 2                   # Figure 2: architecture summary
//! tables --ablation epsilon           # §3.4.3: biased-learning ε sweep
//! tables --ablation scaling           # §3.2: scaling-mode ablation
//! tables --ablation input-size        # §3.4.1: l_s sweep
//! tables --ablation levels            # residual-level M frontier + cascade
//! ```
//!
//! `--scale` shrinks the Table-2 class counts (default 0.02 ≈ 690
//! clips, a few minutes end to end); `--scale 1.0` is the full 34 327
//! clips.  Measured numbers land in EXPERIMENTS.md.

use hotspot_bench::dataset;
use hotspot_bnn::{estimate_hardware, BnnResNet, HwConfig, NetConfig, ScalingMode};
use hotspot_core::{
    evaluate, AdaBoostHotspotDetector, BnnDetector, BnnTrainConfig, CcsHotspotDetector,
    DatasetSpec, DctCnnHotspotDetector, HotspotDetector, InferencePath,
    PatternMatchHotspotDetector, RocCurve, SplitDataset,
};
use hotspot_nn::Layer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut table: Option<u32> = None;
    let mut figure: Option<u32> = None;
    let mut ablation: Option<String> = None;
    let mut scale = 0.02f64;
    let mut verbose = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--table" => {
                table = args.get(i + 1).and_then(|v| v.parse().ok());
                i += 1;
            }
            "--figure" => {
                figure = args.get(i + 1).and_then(|v| v.parse().ok());
                i += 1;
            }
            "--ablation" => {
                ablation = args.get(i + 1).cloned();
                i += 1;
            }
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(scale);
                i += 1;
            }
            "--full" => scale = 1.0,
            "--verbose" => verbose = true,
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    match (table, figure, ablation.as_deref()) {
        (Some(2), _, _) => table2(scale),
        (Some(3), _, _) => table3(scale, verbose),
        (_, Some(2), _) => figure2(),
        (_, _, Some("epsilon")) => ablation_epsilon(scale, verbose),
        (_, _, Some("scaling")) => ablation_scaling(scale, verbose),
        (_, _, Some("input-size")) => ablation_input_size(scale, verbose),
        (_, _, Some("levels")) => ablation_levels(scale, verbose),
        _ => {
            eprintln!("usage: tables --table 2|3 | --figure 2 | --ablation epsilon|scaling|input-size|levels [--scale F] [--full] [--verbose]");
            std::process::exit(2);
        }
    }
}

fn build(scale: f64) -> SplitDataset {
    eprintln!("building dataset at scale {scale} (litho-simulating clips)...");
    let t0 = Instant::now();
    let data = dataset(scale);
    eprintln!("dataset ready in {:.1?}", t0.elapsed());
    data
}

/// Table 2: dataset statistics, ours vs the paper's ICCAD-2012 merge.
fn table2(scale: f64) {
    let data = build(scale);
    let (th, tn) = data.train_counts();
    let (eh, en) = data.test_counts();
    let paper = DatasetSpec::iccad2012_like();
    println!("\nTable 2 — benchmark statistics (scale {scale}):\n");
    println!(
        "{:<22} {:>10} {:>11} {:>9} {:>10}",
        "Benchmark", "#Train HS", "#Train NHS", "#Test HS", "#Test NHS"
    );
    println!(
        "{:<22} {:>10} {:>11} {:>9} {:>10}",
        "ICCAD (paper)", paper.train_hs, paper.train_nhs, paper.test_hs, paper.test_nhs
    );
    println!(
        "{:<22} {:>10} {:>11} {:>9} {:>10}",
        "synthetic (ours)", th, tn, eh, en
    );
}

/// Table 3: the four-detector comparison.
fn table3(scale: f64, verbose: bool) {
    let data = build(scale);
    println!("\nTable 3 — performance comparison (scale {scale}):\n");
    println!(
        "{:<20} {:>7} {:>12} {:>11} {:>9} {:>7} {:>10}",
        "Method", "FA#", "Runtime(s)", "ODST(s)", "Accu(%)", "AUC", "train(s)"
    );
    println!("{}", "-".repeat(82));
    let images: Vec<_> = data.test.iter().map(|c| &c.image).collect();
    let labels: Vec<bool> = data.test.iter().map(|c| c.hotspot).collect();

    let mut bnn_cfg = BnnTrainConfig::bench();
    bnn_cfg.verbose = verbose;
    let mut detectors: Vec<Box<dyn HotspotDetector>> = vec![
        // Extra row beyond the paper's table: the classical
        // pattern-matching approach its introduction contrasts with.
        Box::new(PatternMatchHotspotDetector::new()),
        Box::new(AdaBoostHotspotDetector::new()),
        Box::new(CcsHotspotDetector::new()),
        Box::new(DctCnnHotspotDetector::new()),
        Box::new(BnnDetector::new(bnn_cfg)),
    ];
    for det in &mut detectors {
        let t0 = Instant::now();
        det.fit(&data.train);
        let train_time = t0.elapsed();
        let result = evaluate(det.as_ref(), &data.test);
        let scores = det.score_batch(&images);
        let auc = RocCurve::from_scores(&scores, &labels).auc();
        println!(
            "{:<20} {:>7} {:>12.3} {:>11.0} {:>9.1} {:>7.3} {:>10.1}",
            det.name(),
            result.confusion.false_alarms(),
            result.runtime.as_secs_f64(),
            result.odst_seconds(10.0),
            100.0 * result.confusion.accuracy(),
            auc,
            train_time.as_secs_f64(),
        );
    }
    println!("\npaper (full ICCAD-2012, GTX 1060):");
    println!(
        "{:<20} {:>7} {:>12} {:>11} {:>9}",
        "SPIE'15", 2919, 2672, 53112, 84.2
    );
    println!(
        "{:<20} {:>7} {:>12} {:>11} {:>9}",
        "ICCAD'16", 4497, 1052, 70628, 97.7
    );
    println!(
        "{:<20} {:>7} {:>12} {:>11} {:>9}",
        "DAC'17", 3413, 482, 59402, 98.2
    );
    println!(
        "{:<20} {:>7} {:>12} {:>11} {:>9}",
        "Ours (paper)", 2787, 60, 52970, 99.2
    );
}

/// Figure 2: the 12-layer architecture summary.
fn figure2() {
    let config = NetConfig::paper_12layer();
    let mut rng = StdRng::seed_from_u64(0);
    let mut net = BnnResNet::new(&config, &mut rng);
    println!("\nFigure 2 — redesigned binarized residual network:\n");
    println!(
        "{:<14} {:>14} {:>10} {:>14} {:>10}",
        "layer", "output", "params", "binary MACs", "float MACs"
    );
    for row in net.summary() {
        let shape = row
            .output_shape
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("×");
        println!(
            "{:<14} {:>14} {:>10} {:>14} {:>10}",
            row.name, shape, row.params, row.binary_ops, row.float_ops
        );
    }
    println!("\nweight layers: {}", config.layer_count());
    println!("total params: {}", net.param_count());
    let hw = estimate_hardware(&net.summary(), &HwConfig::default());
    println!(
        "\nfirst-order FPGA estimate (8 lanes @ 200 MHz): {} Kb weights, {} LUTs, {} cycles/clip, {:.0} clips/s",
        hw.weight_bits / 1024,
        hw.datapath_luts,
        hw.cycles_per_clip,
        hw.clips_per_second
    );
}

/// §3.4.3: the biased-learning ε sweep (accuracy vs false alarms).
fn ablation_epsilon(scale: f64, verbose: bool) {
    let data = build(scale);
    println!("\nAblation — biased learning ε (paper §3.4.3, ε = 0.2):\n");
    println!("{:>8} {:>9} {:>7}", "epsilon", "Accu(%)", "FA#");
    for eps in [0.0f32, 0.1, 0.2, 0.3] {
        let mut cfg = BnnTrainConfig::bench();
        cfg.epochs = 8; // ablation sweep: lighter budget per point
        cfg.epsilon = eps;
        if eps == 0.0 {
            cfg.bias_epochs = 0; // ε=0 bias phase is a no-op; skip it
        }
        cfg.verbose = verbose;
        let mut det = BnnDetector::new(cfg);
        det.fit(&data.train);
        let result = evaluate(&det, &data.test);
        println!(
            "{:>8.1} {:>9.1} {:>7}",
            eps,
            100.0 * result.confusion.accuracy(),
            result.confusion.false_alarms()
        );
    }
    println!("\nexpected shape: accuracy rises with ε, false alarms rise too.");
}

/// §3.2: scaling-mode ablation (plain sign vs shared vs per-channel).
fn ablation_scaling(scale: f64, verbose: bool) {
    let data = build(scale);
    println!("\nAblation — binarization scaling (paper §3.2):\n");
    println!("{:<12} {:>9} {:>7}", "mode", "Accu(%)", "FA#");
    for (name, mode) in [
        ("plain-sign", ScalingMode::PlainSign),
        ("shared", ScalingMode::Shared),
        ("per-channel", ScalingMode::PerChannel),
    ] {
        let mut cfg = BnnTrainConfig::bench();
        cfg.epochs = 8; // ablation sweep: lighter budget per point
        cfg.net.scaling = mode;
        // Per-channel has no exact packed form; evaluate all modes on
        // the float path for a like-for-like accuracy comparison.
        cfg.inference = InferencePath::Float;
        cfg.verbose = verbose;
        let mut det = BnnDetector::new(cfg);
        det.fit(&data.train);
        let result = evaluate(&det, &data.test);
        println!(
            "{:<12} {:>9.1} {:>7}",
            name,
            100.0 * result.confusion.accuracy(),
            result.confusion.false_alarms()
        );
    }
}

/// §3.4.1: the input-size (l_s) sweep.
fn ablation_input_size(scale: f64, verbose: bool) {
    let data = build(scale);
    println!("\nAblation — input down-sampling size l_s (paper §3.4.1, l_s = 128):\n");
    println!(
        "{:>6} {:>9} {:>7} {:>12}",
        "l_s", "Accu(%)", "FA#", "Runtime(s)"
    );
    for ls in [32usize, 64, 128] {
        let mut cfg = BnnTrainConfig::bench();
        cfg.epochs = 8; // ablation sweep: lighter budget per point
        cfg.net.input_size = ls;
        cfg.input_size = ls;
        cfg.verbose = verbose;
        let mut det = BnnDetector::new(cfg);
        det.fit(&data.train);
        let result = evaluate(&det, &data.test);
        println!(
            "{:>6} {:>9.1} {:>7} {:>12.3}",
            ls,
            100.0 * result.confusion.accuracy(),
            result.confusion.false_alarms(),
            result.runtime.as_secs_f64()
        );
    }
    println!("\nexpected shape: accuracy saturates by l_s = 128 while runtime grows.");
}

/// Residual binarization levels: the accuracy-vs-throughput frontier at
/// M = 1, 2, 3 plus the triage→confirm cascade built from the M = 2
/// model (fast single-level pass everywhere, full-precision-packed
/// confirmation only on low-margin clips).
fn ablation_levels(scale: f64, verbose: bool) {
    let data = build(scale);
    println!("\nAblation — residual binarization levels M (accuracy / throughput frontier):\n");
    println!(
        "{:<14} {:>7} {:>9} {:>7} {:>12} {:>12}",
        "model", "Acc(%)", "Accu(%)", "FA#", "Runtime(s)", "clips/s"
    );
    let images: Vec<_> = data.test.iter().map(|c| &c.image).collect();
    let labels: Vec<bool> = data.test.iter().map(|c| c.hotspot).collect();
    let mut confirm: Option<BnnDetector> = None;
    for m in [1usize, 2, 3] {
        let mut cfg = BnnTrainConfig::bench();
        cfg.epochs = 8; // ablation sweep: lighter budget per point
        cfg.net.levels = m;
        cfg.verbose = verbose;
        let mut det = BnnDetector::new(cfg);
        det.fit(&data.train);
        let result = evaluate(&det, &data.test);
        let c = &result.confusion;
        println!(
            "M={:<12} {:>7.1} {:>9.1} {:>7} {:>12.3} {:>12.1}",
            m,
            100.0 * (c.tp + c.tn) as f64 / c.total() as f64,
            100.0 * c.accuracy(),
            c.false_alarms(),
            result.runtime.as_secs_f64(),
            images.len() as f64 / result.runtime.as_secs_f64()
        );
        if m == 2 {
            confirm = Some(det);
        }
    }
    // The cascade reuses the M = 2 model: its level-0 planes are the
    // fast triage pass, the full stack confirms only low-margin clips.
    let det = confirm.expect("M = 2 detector was trained above");
    for threshold in [0.05f32, 0.15, 0.5] {
        let t0 = Instant::now();
        let (preds, escalated) = det.classify_cascade_with_stats(&images, threshold);
        let secs = t0.elapsed().as_secs_f64();
        let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        let tp = preds
            .iter()
            .zip(&labels)
            .filter(|(p, l)| **p && **l)
            .count();
        let hotspots = labels.iter().filter(|l| **l).count().max(1);
        let fa = preds
            .iter()
            .zip(&labels)
            .filter(|(p, l)| **p && !**l)
            .count();
        println!(
            "cascade@{:<5} {:>7.1} {:>9.1} {:>7} {:>12.3} {:>12.1}  ({}/{} escalated)",
            threshold,
            100.0 * correct as f64 / preds.len() as f64,
            100.0 * tp as f64 / hotspots as f64,
            fa,
            secs,
            images.len() as f64 / secs,
            escalated,
            images.len()
        );
    }
    println!("\nAcc = overall validation accuracy, Accu = contest hotspot recall (Eq. 1).");
    println!("expected shape: Acc rises with M while clips/s falls; the cascade");
    println!("tracks the M=2 decisions at a fraction of the escalations.");
}
