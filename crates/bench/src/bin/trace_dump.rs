//! Flight-recorder dump analyzer: reads the JSONL that
//! `GET /debug/requests` returns (or that a test wrote to disk) and
//! prints the slowest-request timelines plus a per-stage breakdown —
//! the offline half of the serving observability story (DESIGN.md §5i).
//!
//! ```sh
//! # Offline: analyze a saved dump.
//! cargo run --release -p hotspot-bench --bin trace_dump -- dump.jsonl [--top N]
//!
//! # Self-exercise (CI): start a loopback server, drive traffic, fetch
//! # /debug/requests and /metrics over HTTP, write both as artifacts
//! # into DIR, analyze the dump, and exit nonzero if any request that
//! # completed inference is missing part of its stage timeline.
//! cargo run --release -p hotspot-bench --bin trace_dump -- --serve-and-dump [DIR]
//! ```

use hotspot_bnn::{BnnResNet, NetConfig, PackedBnn};
use hotspot_geometry::BitImage;
use hotspot_serve::{Response, ServeClient, ServeConfig, Server};
use hotspot_telemetry::{Outcome, RequestRecord, STAGE_NAMES};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;

const DEFAULT_TOP: usize = 5;

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Parses every record line in a dump, counting the lines that failed.
fn parse_dump(text: &str) -> (Vec<RequestRecord>, usize) {
    let mut records = Vec::new();
    let mut bad = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match RequestRecord::parse_jsonl(line) {
            Some(rec) => records.push(rec),
            None => bad += 1,
        }
    }
    (records, bad)
}

/// Prints the analysis and returns the records whose outcome implies a
/// full pipeline traversal but whose timeline is incomplete.
fn analyze(records: &[RequestRecord], top: usize) -> Vec<RequestRecord> {
    println!("{} request(s) in dump", records.len());
    if records.is_empty() {
        return Vec::new();
    }

    // Outcome mix.
    let mut by_outcome: Vec<(&str, usize)> = Vec::new();
    for rec in records {
        let name = rec.outcome.name();
        match by_outcome.iter_mut().find(|(n, _)| *n == name) {
            Some((_, c)) => *c += 1,
            None => by_outcome.push((name, 1)),
        }
    }
    let escalated = records.iter().filter(|r| r.escalated).count();
    let degraded = records.iter().filter(|r| r.degraded).count();
    print!("outcomes:");
    for (name, count) in &by_outcome {
        print!(" {name}={count}");
    }
    println!("  escalated={escalated} degraded={degraded}");

    // Per-stage breakdown over records that carry the stage.
    println!(
        "\n{:>10} {:>8} {:>12} {:>12} {:>12}",
        "stage", "records", "mean_ms", "max_ms", "total_ms"
    );
    for (i, name) in STAGE_NAMES.iter().enumerate() {
        let durations: Vec<u64> = records
            .iter()
            .filter(|r| r.stages_recorded & (1 << i) != 0)
            .map(|r| r.stage_ns[i])
            .collect();
        if durations.is_empty() {
            continue;
        }
        let total: u64 = durations.iter().sum();
        let max = *durations.iter().max().expect("non-empty");
        println!(
            "{:>10} {:>8} {:>12.3} {:>12.3} {:>12.3}",
            name,
            durations.len(),
            ms(total) / durations.len() as f64,
            ms(max),
            ms(total)
        );
    }

    // Slowest requests, end-to-end.
    let mut slowest: Vec<&RequestRecord> = records.iter().collect();
    slowest.sort_by_key(|r| std::cmp::Reverse(r.total_ns()));
    println!("\nslowest {} request(s):", top.min(slowest.len()));
    for rec in slowest.iter().take(top) {
        println!(
            "  trace {:016x}  req {}  {:.3} ms total  outcome={} batch={} M={}{}{}",
            rec.trace_id,
            rec.request_id,
            ms(rec.total_ns()),
            rec.outcome.name(),
            rec.batch_size,
            rec.m_level,
            if rec.escalated { " escalated" } else { "" },
            if rec.degraded { " degraded" } else { "" },
        );
        for (i, name) in STAGE_NAMES.iter().enumerate() {
            if rec.stages_recorded & (1 << i) != 0 {
                println!("    {:>10} {:>12.3} ms", name, ms(rec.stage_ns[i]));
            }
        }
    }

    // Completeness audit: anything that completed inference (or was
    // deadline-expired at dispatch) must carry all six stages.  Shed
    // and shutdown requests legitimately stop early.
    records
        .iter()
        .filter(|r| {
            matches!(
                r.outcome,
                Outcome::Ok | Outcome::Deadline | Outcome::Internal
            )
        })
        .filter(|r| !r.complete_timeline())
        .copied()
        .collect()
}

/// One blocking HTTP/1.1 GET against the server's mixed-protocol
/// listener; returns the response body (the server closes after one
/// response).
fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(10)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let body_at = raw
        .find("\r\n\r\n")
        .ok_or_else(|| std::io::Error::other(format!("no header/body split in {path} reply")))?;
    Ok(raw[body_at + 4..].to_string())
}

fn bench_clip(side: usize, variant: u64) -> BitImage {
    let mut img = BitImage::new(side, side);
    let step = 3 + (variant % 7) as usize;
    let mut y = (variant % 4) as usize;
    while y < side {
        img.fill_row_span(y, 0, side);
        y += step;
    }
    img
}

/// CI self-exercise: serve, drive, dump, audit (see module docs).
fn serve_and_dump(dir: &std::path::Path) -> Result<(), String> {
    const SIDE: usize = 32;
    const REQUESTS: u64 = 200;

    let mut rng = StdRng::seed_from_u64(2019);
    let model = PackedBnn::compile(&BnnResNet::new(
        &NetConfig::tiny(SIDE).with_levels(2),
        &mut rng,
    ));
    let mut cfg = ServeConfig::new(SIDE);
    cfg.workers = 2;
    cfg.max_batch = 8;
    let server = Server::start(cfg, model).map_err(|e| format!("start server: {e}"))?;

    let mut client =
        ServeClient::connect(server.addr()).map_err(|e| format!("connect client: {e}"))?;
    for i in 0..REQUESTS {
        // Half the requests carry a client-chosen trace id, half let
        // the server mint one — both shapes must land in the recorder.
        let trace = if i % 2 == 0 { 0xC1_0000 + i } else { 0 };
        match client
            .classify_traced(i, &bench_clip(SIDE, i), 30_000, trace)
            .map_err(|e| format!("request {i}: {e}"))?
        {
            Response::Classify { trace_id, .. } => {
                if trace != 0 && trace_id != trace {
                    return Err(format!("request {i}: trace id not echoed"));
                }
                if trace_id == 0 {
                    return Err(format!("request {i}: server minted no trace id"));
                }
            }
            other => return Err(format!("request {i}: unexpected {other:?}")),
        }
    }

    // The recorder files a record just after the reply is written, so
    // the last request's record can trail the response by microseconds.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    while server.flight().total_recorded() < REQUESTS && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    let dump = http_get(server.addr(), "/debug/requests")
        .map_err(|e| format!("GET /debug/requests: {e}"))?;
    let metrics = http_get(server.addr(), "/metrics").map_err(|e| format!("GET /metrics: {e}"))?;
    server.shutdown();

    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let dump_path = dir.join("debug_requests.jsonl");
    let metrics_path = dir.join("metrics.prom");
    std::fs::write(&dump_path, &dump).map_err(|e| format!("write dump: {e}"))?;
    std::fs::write(&metrics_path, &metrics).map_err(|e| format!("write metrics: {e}"))?;
    println!(
        "artifacts: {} ({} bytes), {} ({} bytes)\n",
        dump_path.display(),
        dump.len(),
        metrics_path.display(),
        metrics.len()
    );

    let (records, bad) = parse_dump(&dump);
    if bad > 0 {
        return Err(format!("{bad} dump line(s) failed to parse"));
    }
    if records.len() < REQUESTS as usize {
        return Err(format!(
            "expected {REQUESTS} records in the dump, found {}",
            records.len()
        ));
    }
    if !metrics.contains("serve_latency_window_p99_ns") {
        return Err("scrape is missing the windowed latency gauges".into());
    }
    let incomplete = analyze(&records, DEFAULT_TOP);
    if !incomplete.is_empty() {
        return Err(format!(
            "{} completed request(s) lack a full stage timeline, e.g. {:?}",
            incomplete.len(),
            incomplete[0]
        ));
    }
    println!(
        "\nall {} completed requests carry full stage timelines",
        records.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--serve-and-dump") {
        let dir = args
            .get(1)
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| "trace_artifacts".into());
        return match serve_and_dump(&dir) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("serve-and-dump failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let Some(path) = args.first() else {
        eprintln!("usage: trace_dump <dump.jsonl> [--top N] | --serve-and-dump [DIR]");
        return ExitCode::FAILURE;
    };
    let top = args
        .iter()
        .position(|a| a == "--top")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse().ok())
        .unwrap_or(DEFAULT_TOP);
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (records, bad) = parse_dump(&text);
    if bad > 0 {
        eprintln!("warning: {bad} line(s) did not parse as request records");
    }
    let incomplete = analyze(&records, top);
    if !incomplete.is_empty() {
        eprintln!(
            "\n{} completed request(s) lack a full stage timeline",
            incomplete.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
