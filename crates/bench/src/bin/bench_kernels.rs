//! Kernel-backend comparison benchmark: times the packed 128×128
//! single-clip forward of the paper's 12-layer network once per
//! available XNOR kernel backend (scalar reference, portable SWAR,
//! and whichever SIMD paths this CPU supports) and writes
//! `BENCH_kernels.json`.
//!
//! Every backend is bit-identical by construction (and re-verified
//! here against the scalar logits), so the numbers isolate pure
//! inner-loop throughput: same plan, same geometry tables, same fused
//! binarize-pack — only the popcount kernel changes.
//!
//! ```sh
//! cargo run --release -p hotspot-bench --bin bench_kernels \
//!     [OUT.json] [--quick] [--check]
//! ```
//!
//! `--quick` shrinks the run count for CI smoke use; `--check` exits
//! nonzero if the auto-dispatched backend is slower than the scalar
//! reference (a dispatch regression — picking SIMD should never lose).
//! `--ref-ns N` records an external reference time (e.g. the pre-PR
//! scalar path, measured from a checkout of the previous revision) so
//! the JSON carries the cross-revision speedup too.  Cross-revision
//! speedups compare best-of-run times: on shared hardware the minimum
//! is the statistic least distorted by scheduling noise, and the
//! reference should be a best-of measurement too.

use hotspot_bnn::{dispatch_report, BnnResNet, KernelBackend, NetConfig, PackedBnn};
use hotspot_telemetry::{MonotonicClock, Timer};
use hotspot_tensor::Workspace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

struct BackendResult {
    backend: KernelBackend,
    mean_ns_per_clip: f64,
    best_ns_per_clip: f64,
}

fn main() {
    let mut out_path = String::from("BENCH_kernels.json");
    let mut quick = false;
    let mut check = false;
    let mut profile_batch = false;
    let mut ref_ns: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--profile-batch" => profile_batch = true,
            "--ref-ns" => {
                ref_ns = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--ref-ns needs a nanosecond count"),
                );
            }
            other => out_path = other.to_string(),
        }
    }
    let runs: usize = if quick { 3 } else { 10 };

    let config = NetConfig::paper_12layer();
    let side = config.input_size;
    let mut rng = StdRng::seed_from_u64(2019);
    let net = BnnResNet::new(&config, &mut rng);
    let packed = PackedBnn::compile(&net);

    // One random ±1 clip: XNOR kernel cost is data-independent.
    let mut state = 0xb17_u32;
    let input: Vec<f32> = (0..side * side)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            if state & 0x8000 == 0 {
                1.0
            } else {
                -1.0
            }
        })
        .collect();

    let clock = MonotonicClock;
    let dispatch = dispatch_report();
    let mut reference: Option<Vec<f32>> = None;
    let mut results = Vec::new();
    for backend in KernelBackend::available() {
        let plan = packed.plan_with_backend((side, side), backend);
        let mut ws = Workspace::new();
        let mut logits = vec![0.0f32; 2];
        plan.run_into(&input, 1, &mut ws, &mut logits); // warm-up
        match &reference {
            None => reference = Some(logits.clone()),
            Some(r) => assert_eq!(
                &logits,
                r,
                "backend {} diverged from the scalar reference",
                backend.name()
            ),
        }
        let mut best = u64::MAX;
        let total = Timer::start(&clock);
        for _ in 0..runs {
            let t = Timer::start(&clock);
            plan.run_into(&input, 1, &mut ws, &mut logits);
            best = best.min(t.elapsed_ns());
        }
        let wall_ns = total.elapsed_ns();
        results.push(BackendResult {
            backend,
            mean_ns_per_clip: wall_ns as f64 / runs as f64,
            best_ns_per_clip: best as f64,
        });
    }

    let scalar_mean = results
        .iter()
        .find(|r| r.backend == KernelBackend::Scalar)
        .expect("scalar backend is always available")
        .mean_ns_per_clip;

    // Residual-level scaling: one 3-level model of the same topology,
    // executed at M = 1, 2, 3 via capped plans on the dispatched
    // backend.  Level 0 of the M-level stack is exactly the
    // single-level representation, so these numbers isolate the
    // per-clip cost of each extra correction plane (one more pass of
    // the same popcount kernels per binary conv).
    let mut rng = StdRng::seed_from_u64(2019);
    let multi = PackedBnn::compile(&BnnResNet::new(&config.clone().with_levels(3), &mut rng));
    let mut level_results = Vec::new();
    for m in 1..=3usize {
        let plan = multi.plan_capped_with_backend((side, side), dispatch.active, m);
        let mut ws = Workspace::new();
        let mut logits = vec![0.0f32; 2];
        plan.run_into(&input, 1, &mut ws, &mut logits); // warm-up
        let mut best = u64::MAX;
        let total = Timer::start(&clock);
        for _ in 0..runs {
            let t = Timer::start(&clock);
            plan.run_into(&input, 1, &mut ws, &mut logits);
            best = best.min(t.elapsed_ns());
        }
        let wall_ns = total.elapsed_ns();
        level_results.push((m, wall_ns as f64 / runs as f64, best as f64));
    }

    // Batch scaling through the bit-sliced XNOR-GEMM tier: clips/sec
    // at batch 1/4/16/64 per backend via `run_batch_into`.  Batch 1
    // falls back to the per-item path (the tier needs 2+ clips), so
    // the batch-1 point doubles as the series' single-clip baseline;
    // larger batches amortize the dense B-repack across filters and
    // residual levels and fill the vector lanes with whole GEMM tiles.
    let batch_sizes: &[usize] = if quick { &[1, 4, 16] } else { &[1, 4, 16, 64] };
    let max_batch = *batch_sizes.last().unwrap();
    let mut state = 0xba7c41_u32;
    let batch_input: Vec<f32> = (0..max_batch * side * side)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            if state & 0x8000 == 0 {
                1.0
            } else {
                -1.0
            }
        })
        .collect();
    // (backend, batch, mean_ns_per_clip, best_ns_per_clip)
    let mut batch_results: Vec<(KernelBackend, usize, f64, f64)> = Vec::new();
    let mut batch_reference: Option<Vec<f32>> = None;
    for backend in KernelBackend::available() {
        let plan = packed.plan_with_backend((side, side), backend);
        let mut ws = Workspace::new();
        for &bs in batch_sizes {
            let iters = (runs * 8 / bs).clamp(4, runs * 4);
            let inp = &batch_input[..bs * side * side];
            let mut logits = vec![0.0f32; bs * 2];
            plan.run_batch_into(inp, bs, &mut ws, &mut logits); // warm-up
            if bs == max_batch {
                match &batch_reference {
                    None => batch_reference = Some(logits.clone()),
                    Some(r) => assert_eq!(
                        &logits,
                        r,
                        "batched backend {} diverged from the reference",
                        backend.name()
                    ),
                }
            }
            let mut best = u64::MAX;
            let total = Timer::start(&clock);
            for _ in 0..iters {
                let t = Timer::start(&clock);
                plan.run_batch_into(inp, bs, &mut ws, &mut logits);
                best = best.min(t.elapsed_ns());
            }
            let wall_ns = total.elapsed_ns();
            batch_results.push((
                backend,
                bs,
                wall_ns as f64 / (iters * bs) as f64,
                best as f64 / bs as f64,
            ));
        }
    }

    // `--profile-batch`: per-layer timing of the batched tier at batch
    // 16 on the dispatched backend, next to the per-item path — shows
    // which layers the GEMM tier pays off on and where the remaining
    // time sits.
    if profile_batch {
        let bs = 16.min(max_batch);
        let plan = packed.plan_with_backend((side, side), dispatch.active);
        let inp = &batch_input[..bs * side * side];
        let mut logits = vec![0.0f32; bs * 2];
        let mut ws = Workspace::new();
        let mut per_item = plan.profiler();
        plan.run_into_profiled(inp, bs, &mut ws, &mut logits, &mut per_item);
        plan.run_into_profiled(inp, bs, &mut ws, &mut logits, &mut per_item);
        let mut batched = plan.profiler();
        plan.run_batch_into_profiled(inp, bs, &mut ws, &mut logits, &mut batched);
        plan.run_batch_into_profiled(inp, bs, &mut ws, &mut logits, &mut batched);
        println!(
            "{:<16} {:>14} {:>14} {:>8}  (batch {bs}, {})",
            "step",
            "per_item_ns",
            "batched_ns",
            "ratio",
            dispatch.active.name()
        );
        // Chunked sub-batches record more calls per step, so compare
        // totals (same clip count both sides).
        for (a, b) in per_item.report().iter().zip(batched.report().iter()) {
            println!(
                "{:<16} {:>14} {:>14} {:>7.2}x",
                a.name,
                a.total_ns,
                b.total_ns,
                a.total_ns as f64 / (b.total_ns.max(1)) as f64
            );
        }
    }

    let mut json = String::new();
    json.push_str("{\n  \"benchmark\": \"kernel_backends\",\n");
    let _ = writeln!(json, "  \"input_size\": {side},");
    let _ = writeln!(json, "  \"runs\": {runs},");
    let _ = writeln!(json, "  \"dispatched\": \"{}\",", dispatch.active.name());
    let _ = writeln!(
        json,
        "  \"gemm_tier\": {},",
        packed.plan((side, side)).gemm_tier()
    );
    if let Some(r) = ref_ns {
        let _ = writeln!(json, "  \"reference_ns_per_clip\": {r:.0},");
        json.push_str(
            "  \"reference_note\": \"best-of-run single-clip forward of the \
             pre-kernel-dispatch scalar path, measured back-to-back on the \
             same machine; speedup_vs_reference compares best times\",\n",
        );
    }
    json.push_str("  \"backends\": [\n");
    for (i, r) in results.iter().enumerate() {
        let mut entry = format!(
            "    {{\"name\": \"{}\", \"u64_lanes\": {}, \"mean_ns_per_clip\": {:.0}, \
             \"best_ns_per_clip\": {:.0}, \"clips_per_sec\": {:.1}, \"speedup_vs_scalar\": {:.2}",
            r.backend.name(),
            r.backend.u64_lanes(),
            r.mean_ns_per_clip,
            r.best_ns_per_clip,
            1e9 / r.mean_ns_per_clip,
            scalar_mean / r.mean_ns_per_clip,
        );
        if let Some(refn) = ref_ns {
            let _ = write!(
                entry,
                ", \"speedup_vs_reference\": {:.2}",
                refn / r.best_ns_per_clip
            );
        }
        let _ = writeln!(
            json,
            "{entry}}}{}",
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"residual_levels\": [\n");
    for (i, (m, mean, best)) in level_results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"levels\": {m}, \"mean_ns_per_clip\": {mean:.0}, \
             \"best_ns_per_clip\": {best:.0}, \"clips_per_sec\": {:.1}}}{}",
            1e9 / mean,
            if i + 1 < level_results.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"batch_scaling\": [\n");
    for (i, (backend, bs, mean, best)) in batch_results.iter().enumerate() {
        let base = batch_results
            .iter()
            .find(|(b, n, _, _)| b == backend && *n == 1)
            .map(|(_, _, m, _)| *m)
            .unwrap_or(*mean);
        let _ = writeln!(
            json,
            "    {{\"backend\": \"{}\", \"batch\": {bs}, \"mean_ns_per_clip\": {mean:.0}, \
             \"best_ns_per_clip\": {best:.0}, \"clips_per_sec\": {:.1}, \
             \"speedup_vs_batch1\": {:.2}}}{}",
            backend.name(),
            1e9 / mean,
            base / mean,
            if i + 1 < batch_results.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");

    println!("wrote {out_path} ({side}x{side} single clip, {runs} runs/backend)");
    println!("{}", dispatch.summary());
    println!(
        "{:<8} {:>14} {:>14} {:>12} {:>10}",
        "backend", "mean_ns/clip", "best_ns/clip", "clips/s", "vs scalar"
    );
    for r in &results {
        println!(
            "{:<8} {:>14.0} {:>14.0} {:>12.1} {:>9.2}x",
            r.backend.name(),
            r.mean_ns_per_clip,
            r.best_ns_per_clip,
            1e9 / r.mean_ns_per_clip,
            scalar_mean / r.mean_ns_per_clip
        );
    }

    println!(
        "{:<8} {:>14} {:>14} {:>12}",
        "levels", "mean_ns/clip", "best_ns/clip", "clips/s"
    );
    for (m, mean, best) in &level_results {
        println!(
            "M={:<6} {:>14.0} {:>14.0} {:>12.1}",
            m,
            mean,
            best,
            1e9 / mean
        );
    }

    println!(
        "{:<8} {:>6} {:>14} {:>12} {:>10}",
        "backend", "batch", "mean_ns/clip", "clips/s", "vs batch1"
    );
    for (backend, bs, mean, _) in &batch_results {
        let base = batch_results
            .iter()
            .find(|(b, n, _, _)| b == backend && *n == 1)
            .map(|(_, _, m, _)| *m)
            .unwrap_or(*mean);
        println!(
            "{:<8} {:>6} {:>14.0} {:>12.1} {:>9.2}x",
            backend.name(),
            bs,
            mean,
            1e9 / mean,
            base / mean
        );
    }

    if check {
        let active = results
            .iter()
            .find(|r| r.backend == dispatch.active)
            .expect("dispatched backend was benchmarked");
        assert!(
            active.mean_ns_per_clip <= scalar_mean,
            "dispatch regression: {} ({:.0} ns/clip) is slower than scalar ({:.0} ns/clip)",
            active.backend.name(),
            active.mean_ns_per_clip,
            scalar_mean
        );
        println!(
            "check ok: dispatched {} is {:.2}x scalar",
            active.backend.name(),
            scalar_mean / active.mean_ns_per_clip
        );
        // The batched GEMM tier must never lose to per-item execution
        // on the dispatched backend at batch 16 — that would mean the
        // dense repack costs more than the microkernels save.
        let single = active.mean_ns_per_clip;
        if let Some((_, _, mean16, _)) = batch_results
            .iter()
            .find(|(b, n, _, _)| *b == dispatch.active && *n == 16)
        {
            assert!(
                *mean16 <= single,
                "batch regression: {} batch-16 ({:.0} ns/clip) is slower \
                 than single-clip ({:.0} ns/clip)",
                dispatch.active.name(),
                mean16,
                single
            );
            println!(
                "check ok: {} batch-16 is {:.2}x single-clip",
                dispatch.active.name(),
                single / mean16
            );
        }
    }
}
