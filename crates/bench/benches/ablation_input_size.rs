//! §3.4.1 ablation: inference cost as a function of the input
//! down-sampling size l_s (the paper settles on 128 as the
//! accuracy/speed balance; this bench supplies the speed half).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hotspot_bench::{quick_bnn, stripe_clips};
use std::hint::black_box;

fn bench_input_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_input_size");
    for &ls in &[32usize, 64, 128] {
        let det = quick_bnn(ls);
        let clips = stripe_clips(8, ls);
        let images: Vec<_> = clips.iter().map(|c| &c.image).collect();
        group.throughput(Throughput::Elements(images.len() as u64));
        group.bench_function(BenchmarkId::new("packed_inference", ls), |b| {
            b.iter(|| det.predict_batch_packed(black_box(&images)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = hotspot_bench::quick_criterion();
    targets = bench_input_sizes
}
criterion_main!(benches);
