//! Figure 3: the BNN block (BatchNorm → Binarize → BinaryConv).
//!
//! Measures one block's training-path forward and backward passes and
//! the compiled packed forward, plus a full residual block — the unit
//! the 12-layer network is assembled from.

use criterion::{criterion_group, criterion_main, Criterion};
use hotspot_bnn::{BinaryResidualBlock, BnnBlock, PackedConv, ScalingMode};
use hotspot_nn::Layer;
use hotspot_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn pseudo(shape: &[usize], seed: u32) -> Tensor {
    let numel: usize = shape.iter().product();
    let mut state = seed;
    Tensor::from_vec(
        shape,
        (0..numel)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 16) as f32 / 32768.0 - 1.0
            })
            .collect(),
    )
}

fn bench_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_block");
    let mut rng = StdRng::seed_from_u64(1);
    let mut block = BnnBlock::new(16, 16, 3, 1, 1, ScalingMode::Shared, &mut rng);
    let x = pseudo(&[4, 16, 32, 32], 5);

    group.bench_function("forward_train", |b| {
        b.iter(|| block.forward(black_box(&x), true))
    });

    group.bench_function("forward_backward", |b| {
        b.iter(|| {
            let y = block.forward(black_box(&x), true);
            block.backward(&Tensor::ones(y.shape()))
        })
    });

    // Warm BN stats, then compile and measure packed inference.
    let _ = block.forward(&x, true);
    let packed = PackedConv::compile(&block);
    group.bench_function("forward_packed", |b| {
        b.iter(|| packed.forward(black_box(&x)))
    });
    group.finish();
}

fn bench_residual(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_residual_block");
    let mut rng = StdRng::seed_from_u64(2);
    let mut identity = BinaryResidualBlock::new(16, 16, 1, ScalingMode::Shared, &mut rng);
    let mut projection = BinaryResidualBlock::new(16, 32, 2, ScalingMode::Shared, &mut rng);
    let x = pseudo(&[4, 16, 32, 32], 7);

    group.bench_function("identity_shortcut", |b| {
        b.iter(|| identity.forward(black_box(&x), true))
    });
    group.bench_function("projection_shortcut", |b| {
        b.iter(|| projection.forward(black_box(&x), true))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = hotspot_bench::quick_criterion();
    targets = bench_block, bench_residual
}
criterion_main!(benches);
