//! Batch classification throughput of the workspace-backed packed
//! engine, in clips/sec.
//!
//! `table3_inference` measures per-detector latency on one mid-size
//! batch; this bench sweeps the batch size through the `BnnDetector`
//! packed path to show what the execution-plan refactor buys: small
//! batches run on a single warm workspace, large batches shard across
//! rayon workers with one workspace per worker, and neither regime
//! allocates in steady state.  Criterion's `Throughput::Elements`
//! reporting makes the clips/sec number the headline figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hotspot_bench::stripe_clips;
use hotspot_core::{BnnDetector, BnnTrainConfig, HotspotDetector};
use std::hint::black_box;

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_batch");

    let train = stripe_clips(16, 64);
    let mut cfg = BnnTrainConfig::bench();
    cfg.epochs = 2;
    cfg.bias_epochs = 0;
    let mut det = BnnDetector::new(cfg);
    det.fit(&train);

    // 1 exercises the single-clip fast path, 32 a sub-shard batch, 256
    // a multi-shard batch that fans out across rayon workers.
    for &batch in &[1usize, 32, 256] {
        let eval = stripe_clips(batch, 64);
        let images: Vec<_> = eval.iter().map(|c| &c.image).collect();
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(
            BenchmarkId::new("packed_clips_per_sec", batch),
            &images,
            |b, images| b.iter(|| det.predict_batch(black_box(images))),
        );
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = hotspot_bench::quick_criterion();
    targets = bench_throughput
}
criterion_main!(benches);
