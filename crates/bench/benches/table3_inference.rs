//! Table 3 "Runtime" column: per-clip inference latency of every
//! detector, on identically sized clips.
//!
//! Each detector is quick-trained on toy clips first (training quality
//! does not affect inference cost); the measured quantity is the
//! classification throughput that the paper's Runtime column reports.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hotspot_bench::stripe_clips;
use hotspot_core::{
    AdaBoostHotspotDetector, BnnDetector, BnnTrainConfig, CcsHotspotDetector,
    DctCnnHotspotDetector, HotspotDetector,
};
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_inference");
    let train = stripe_clips(16, 64);
    let eval = stripe_clips(32, 64);
    let images: Vec<_> = eval.iter().map(|c| &c.image).collect();
    group.throughput(Throughput::Elements(images.len() as u64));

    let mut adaboost = AdaBoostHotspotDetector::new();
    adaboost.fit(&train);
    group.bench_function("spie15_adaboost", |b| {
        b.iter(|| adaboost.predict_batch(black_box(&images)))
    });

    let mut ccs = CcsHotspotDetector::new();
    ccs.fit(&train);
    group.bench_function("iccad16_ccs", |b| {
        b.iter(|| ccs.predict_batch(black_box(&images)))
    });

    let mut dct = DctCnnHotspotDetector::new();
    dct.fit(&train);
    group.bench_function("dac17_dct_cnn", |b| {
        b.iter(|| dct.predict_batch(black_box(&images)))
    });

    let mut cfg = BnnTrainConfig::bench();
    cfg.epochs = 2;
    cfg.bias_epochs = 0;
    let mut bnn = BnnDetector::new(cfg);
    bnn.fit(&train);
    group.bench_function("dac19_bnn_packed", |b| {
        b.iter(|| bnn.predict_batch_packed(black_box(&images)))
    });
    group.bench_function("dac19_bnn_float", |b| {
        b.iter(|| bnn.predict_batch_float(black_box(&images)))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = hotspot_bench::quick_criterion();
    targets = bench_inference
}
criterion_main!(benches);
