//! Figure 1: real-valued vs binarized convolution cost.
//!
//! The paper's Figure 1 contrasts float networks (32-bit MACs) with
//! binarized networks (XNOR + popcount).  This bench measures the three
//! implementations on identical layer shapes:
//!
//! * `float_conv`   — full-precision im2col convolution,
//! * `naive_binary` — ±1 convolution evaluated as float MACs (the
//!   binarization *without* bit packing),
//! * `xnor_conv`    — the bit-packed XNOR + popcount kernel.
//!
//! The float→xnor ratio is the kernel-level speedup behind the paper's
//! 8× end-to-end claim; naive_binary isolates how much of it comes
//! from the packing rather than the binarization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotspot_bnn::{sign_tensor, xnor_conv2d, BitFilter, BitTensor};
use hotspot_tensor::{conv2d, Tensor};
use std::hint::black_box;

fn pseudo(shape: &[usize], seed: u32) -> Tensor {
    let numel: usize = shape.iter().product();
    let mut state = seed;
    Tensor::from_vec(
        shape,
        (0..numel)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 16) as f32 / 32768.0 - 1.0
            })
            .collect(),
    )
}

fn bench_conv_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_conv_kernels");
    // Layer shapes from the paper's network: (channels, spatial).
    for &(channels, size) in &[(16usize, 64usize), (32, 32), (64, 16)] {
        let x = pseudo(&[1, channels, size, size], 1);
        let w = pseudo(&[channels, channels, 3, 3], 2);
        let sx = sign_tensor(&x);
        let sw = sign_tensor(&w);
        let bits_x = BitTensor::from_tensor(&x);
        let bits_w = BitFilter::from_tensor(&w);

        let id = format!("c{channels}_s{size}");
        group.bench_function(BenchmarkId::new("float_conv", &id), |b| {
            b.iter(|| conv2d(black_box(&x), black_box(&w), None, 1, 1))
        });
        group.bench_function(BenchmarkId::new("naive_binary", &id), |b| {
            b.iter(|| conv2d(black_box(&sx), black_box(&sw), None, 1, 1))
        });
        group.bench_function(BenchmarkId::new("xnor_conv", &id), |b| {
            b.iter(|| xnor_conv2d(black_box(&bits_x), black_box(&bits_w), 1, 1))
        });
    }
    group.finish();
}

fn bench_packing_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_packing");
    let x = pseudo(&[1, 64, 32, 32], 3);
    group.bench_function("pack_activations", |b| {
        b.iter(|| BitTensor::from_tensor(black_box(&x)))
    });
    let w = pseudo(&[64, 64, 3, 3], 4);
    group.bench_function("pack_weights", |b| {
        b.iter(|| BitFilter::from_tensor(black_box(&w)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = hotspot_bench::quick_criterion();
    targets = bench_conv_kernels, bench_packing_overhead
}
criterion_main!(benches);
