//! Fault-injection harness for the serving core.
//!
//! Each test arms one failure mode — deadline expiry, queue overload,
//! a panicking worker, a corrupt frame, a failed hot-swap — and
//! asserts the contract the server owes its clients: a *typed*
//! response for every admitted request (zero lost requests), blast
//! radius limited to the culpable request, and a server that is still
//! healthy afterwards.

use hotspot_bnn::{BnnResNet, NetConfig, PackedBnn};
use hotspot_core::persist::save_model;
use hotspot_geometry::BitImage;
use hotspot_serve::{ErrorCode, Request, Response, ServeClient, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Duration;

const SIDE: usize = 32;

/// An untrained compiled model — the protocol does not care about
/// accuracy, and skipping training keeps the harness fast.
fn model(seed: u64) -> PackedBnn {
    let mut rng = StdRng::seed_from_u64(seed);
    PackedBnn::compile(&BnnResNet::new(&NetConfig::tiny(SIDE), &mut rng))
}

/// Same topology with M = 2 residual levels (a different deployment
/// contract, used by cascade and arch-mismatch tests).
fn model_m2(seed: u64) -> PackedBnn {
    let mut rng = StdRng::seed_from_u64(seed);
    PackedBnn::compile(&BnnResNet::new(
        &NetConfig::tiny(SIDE).with_levels(2),
        &mut rng,
    ))
}

/// A deterministic clip with some geometry in it.
fn clip(variant: u64) -> BitImage {
    let mut img = BitImage::new(SIDE, SIDE);
    let step = 3 + (variant % 5) as usize;
    let mut y = (variant % 3) as usize;
    while y < SIDE {
        img.fill_row_span(y, 0, SIDE);
        y += step;
    }
    img
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("serve_fault_{name}_{}", std::process::id()))
}

/// Reads `n` responses and indexes them by request id.
fn collect(client: &mut ServeClient, n: usize) -> HashMap<u64, Response> {
    let mut got = HashMap::new();
    for _ in 0..n {
        let resp = client.read_response().expect("a response per request");
        let id = match &resp {
            Response::Classify { id, .. }
            | Response::Error { id, .. }
            | Response::Pong { id }
            | Response::SwapOk { id, .. }
            | Response::Stats { id, .. }
            | Response::ScanRegions { id, .. } => *id,
            Response::MetricsText(_) => panic!("unexpected metrics frame"),
        };
        assert!(got.insert(id, resp).is_none(), "duplicate response id {id}");
    }
    got
}

#[test]
fn expired_deadlines_get_typed_rejections_not_silence() {
    let mut cfg = ServeConfig::new(SIDE);
    cfg.workers = 1;
    cfg.max_batch = 1;
    let server = Server::start(cfg, model(1)).unwrap();
    // Every batch stalls 60 ms; a 20 ms budget cannot survive that.
    server.fault().set_slow_worker_ms(60);

    let mut client = ServeClient::connect(server.addr()).unwrap();
    let n = 3u64;
    for id in 1..=n {
        client
            .send(&Request::Classify {
                id,
                deadline_ms: 20,
                width: SIDE as u32,
                height: SIDE as u32,
                words: clip(id).as_words().to_vec(),
                trace_id: 0,
            })
            .unwrap();
    }
    let got = collect(&mut client, n as usize);
    for id in 1..=n {
        match &got[&id] {
            Response::Error { code, .. } => assert_eq!(*code, ErrorCode::Deadline),
            other => panic!("request {id}: expected Deadline, got {other:?}"),
        }
    }
    // The server recovers the moment the stall is lifted.
    server.fault().set_slow_worker_ms(0);
    assert!(matches!(
        client.classify(99, &clip(0), 5_000).unwrap(),
        Response::Classify { id: 99, .. }
    ));
    assert_eq!(
        server.metrics().counter("serve_deadline_miss_total").get(),
        n
    );
    server.shutdown();
}

#[test]
fn overload_sheds_with_typed_overloaded_and_answers_everything() {
    let mut cfg = ServeConfig::new(SIDE);
    cfg.workers = 1;
    cfg.max_batch = 4;
    cfg.queue_capacity = 4;
    cfg.high_water = 3;
    cfg.low_water = 1;
    let server = Server::start(cfg, model(2)).unwrap();
    server.fault().set_slow_worker_ms(150);

    let mut client = ServeClient::connect(server.addr()).unwrap();
    let n = 20u64;
    for id in 1..=n {
        client
            .send(&Request::Classify {
                id,
                deadline_ms: 10_000,
                width: SIDE as u32,
                height: SIDE as u32,
                words: clip(id).as_words().to_vec(),
                trace_id: 0,
            })
            .unwrap();
    }
    let got = collect(&mut client, n as usize);
    assert_eq!(got.len(), n as usize, "every request answered exactly once");
    let mut served = 0u64;
    let mut shed = 0u64;
    for (id, resp) in &got {
        match resp {
            Response::Classify { .. } => served += 1,
            Response::Error { code, .. } if *code == ErrorCode::Overloaded => shed += 1,
            other => panic!("request {id}: unexpected {other:?}"),
        }
    }
    assert!(shed > 0, "a 20-deep burst into a 4-slot queue must shed");
    assert!(served > 0, "admitted requests are still served");
    assert_eq!(served + shed, n);
    assert_eq!(server.metrics().counter("serve_shed_total").get(), shed);
    server.fault().set_slow_worker_ms(0);
    server.shutdown();
}

#[test]
fn sustained_overload_degrades_to_triage_and_recovers_with_hysteresis() {
    let mut cfg = ServeConfig::new(SIDE);
    cfg.workers = 1;
    cfg.max_batch = 2;
    cfg.queue_capacity = 8;
    cfg.high_water = 3;
    cfg.low_water = 1;
    cfg.degrade_enter_after = 2;
    cfg.degrade_exit_after = 2;
    // Escalate every clip when healthy: degradation is then directly
    // observable as escalated == false.
    cfg.cascade_threshold = f32::MAX;
    let server = Server::start(cfg, model_m2(3)).unwrap();
    server.fault().set_slow_worker_ms(40);

    let mut client = ServeClient::connect(server.addr()).unwrap();
    let n = 8u64;
    for id in 1..=n {
        client
            .send(&Request::Classify {
                id,
                deadline_ms: 10_000,
                width: SIDE as u32,
                height: SIDE as u32,
                words: clip(id).as_words().to_vec(),
                trace_id: 0,
            })
            .unwrap();
    }
    let got = collect(&mut client, n as usize);
    let degraded_serves = got
        .values()
        .filter(|r| {
            matches!(
                r,
                Response::Classify {
                    degraded: true,
                    escalated: false,
                    ..
                }
            )
        })
        .count();
    assert!(
        degraded_serves > 0,
        "sustained depth >= 3 must flip the service to triage-only: {got:?}"
    );

    // Recovery: unhurried lock-step traffic keeps the depth at 1
    // (== low_water); after exit_after such observations the cascade
    // returns, visible as escalated == true.
    server.fault().set_slow_worker_ms(0);
    let mut recovered = false;
    for id in 100..130 {
        match client.classify(id, &clip(id), 10_000).unwrap() {
            Response::Classify {
                degraded: false,
                escalated: true,
                ..
            } => {
                recovered = true;
                break;
            }
            Response::Classify { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(recovered, "the ladder must exit degradation once calm");
    assert!(!server.is_degraded());
    server.shutdown();
}

#[test]
fn a_poisoned_request_fails_alone_and_its_batchmates_still_get_answers() {
    let mut cfg = ServeConfig::new(SIDE);
    cfg.workers = 1;
    cfg.max_batch = 8;
    let server = Server::start(cfg, model(4)).unwrap();
    let fault = server.fault();
    fault.poison_request(13);
    // Stall each batch briefly so the burst accumulates into one batch
    // behind the first request.
    fault.set_slow_worker_ms(80);

    let mut client = ServeClient::connect(server.addr()).unwrap();
    let ids = [11u64, 12, 13, 14, 15];
    for &id in &ids {
        client
            .send(&Request::Classify {
                id,
                deadline_ms: 10_000,
                width: SIDE as u32,
                height: SIDE as u32,
                words: clip(id).as_words().to_vec(),
                trace_id: 0,
            })
            .unwrap();
    }
    let got = collect(&mut client, ids.len());
    for &id in &ids {
        match &got[&id] {
            Response::Error { code, .. } if id == 13 => {
                assert_eq!(
                    *code,
                    ErrorCode::Internal,
                    "the poisoned request fails typed"
                );
            }
            Response::Classify { .. } if id != 13 => {}
            other => panic!("request {id}: unexpected {other:?}"),
        }
    }
    assert!(
        server.metrics().counter("serve_worker_panics_total").get() >= 1,
        "the panic was counted"
    );

    // The worker thread survived: disarm and keep serving.
    fault.clear_poison_request();
    fault.set_slow_worker_ms(0);
    assert!(matches!(
        client.classify(13, &clip(13), 5_000).unwrap(),
        Response::Classify { id: 13, .. }
    ));
    server.shutdown();
}

#[test]
fn corrupt_truncated_and_oversized_frames_are_contained() {
    let server = Server::start(ServeConfig::new(SIDE), model(5)).unwrap();

    // Garbage payload under a valid length prefix: typed CorruptFrame,
    // then the connection closes.
    let mut c1 = ServeClient::connect(server.addr()).unwrap();
    let mut garbage = vec![0u8; 4 + 8];
    garbage[..4].copy_from_slice(&8u32.to_le_bytes());
    garbage[4] = 0x7F; // no such request type
    c1.send_raw(&garbage).unwrap();
    match c1.read_response().unwrap() {
        Response::Error { id, code, .. } => {
            assert_eq!(id, 0, "no request id could be recovered");
            assert_eq!(code, ErrorCode::CorruptFrame);
        }
        other => panic!("unexpected {other:?}"),
    }

    // Oversized length prefix: refused before any allocation.
    let mut c2 = ServeClient::connect(server.addr()).unwrap();
    c2.send_raw(&u32::MAX.to_le_bytes()).unwrap();
    match c2.read_response().unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::CorruptFrame),
        other => panic!("unexpected {other:?}"),
    }

    // Truncated frame: the peer dies mid-payload.  No request ever
    // formed, so nothing is owed — but the server must not wedge.
    {
        let mut c3 = ServeClient::connect(server.addr()).unwrap();
        c3.send_raw(&100u32.to_le_bytes()).unwrap();
        c3.send_raw(&[1, 2, 3]).unwrap();
        // c3 drops here, closing the socket mid-frame.
    }

    // A classify whose raster words disagree with its dimensions is a
    // BadRequest, not a decode error — the frame itself was valid.
    let mut c4 = ServeClient::connect(server.addr()).unwrap();
    match c4
        .request(&Request::Classify {
            id: 41,
            deadline_ms: 1_000,
            width: SIDE as u32,
            height: SIDE as u32,
            words: vec![0; 3], // far too few words for 32x32
            trace_id: 0,
        })
        .unwrap()
    {
        Response::Error { id, code, .. } => {
            assert_eq!(id, 41);
            assert_eq!(code, ErrorCode::BadRequest);
        }
        other => panic!("unexpected {other:?}"),
    }
    // Wrong clip size entirely: also typed.
    match c4
        .request(&Request::Classify {
            id: 42,
            deadline_ms: 1_000,
            width: 16,
            height: 16,
            words: vec![0; 4],
            trace_id: 0,
        })
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("unexpected {other:?}"),
    }

    // After all of that: a fresh connection serves normally.
    assert!(matches!(
        c4.classify(43, &clip(0), 5_000).unwrap(),
        Response::Classify { id: 43, .. }
    ));
    assert!(server.metrics().counter("serve_bad_frames_total").get() >= 2);
    server.shutdown();
}

#[test]
fn failed_swaps_are_rejected_typed_and_leave_the_service_untouched() {
    let server = Server::start(ServeConfig::new(SIDE), model(6)).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();

    // Mid-swap artifact corruption: a bit flip breaks the CRC.
    let corrupt = tmp("corrupt");
    save_model(&corrupt, &model(7)).unwrap();
    let mut bytes = std::fs::read(&corrupt).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&corrupt, &bytes).unwrap();
    match client.swap_model(1, corrupt.to_str().unwrap()).unwrap() {
        Response::Error { code, msg, .. } => {
            assert_eq!(code, ErrorCode::SwapFailed);
            assert!(msg.contains("integrity"), "CRC failure surfaced: {msg}");
        }
        other => panic!("unexpected {other:?}"),
    }

    // Architecture mismatch: an M = 2 artifact against an M = 1 server.
    let wrong_arch = tmp("arch");
    save_model(&wrong_arch, &model_m2(8)).unwrap();
    match client.swap_model(2, wrong_arch.to_str().unwrap()).unwrap() {
        Response::Error { code, msg, .. } => {
            assert_eq!(code, ErrorCode::SwapFailed);
            assert!(msg.contains("fingerprint"), "{msg}");
        }
        other => panic!("unexpected {other:?}"),
    }

    // Failed canary on an otherwise valid artifact.
    let valid = tmp("valid");
    save_model(&valid, &model(9)).unwrap();
    server.fault().set_fail_canary(true);
    match client.swap_model(3, valid.to_str().unwrap()).unwrap() {
        Response::Error { code, msg, .. } => {
            assert_eq!(code, ErrorCode::SwapFailed);
            assert!(msg.contains("canary"), "{msg}");
        }
        other => panic!("unexpected {other:?}"),
    }
    server.fault().set_fail_canary(false);

    // Three rejections later: still generation 1, still serving.
    assert_eq!(server.generation(), 1);
    assert!(matches!(
        client.classify(4, &clip(0), 5_000).unwrap(),
        Response::Classify { id: 4, .. }
    ));

    // And the same artifact swaps cleanly once the canary is honest.
    match client.swap_model(5, valid.to_str().unwrap()).unwrap() {
        Response::SwapOk { generation, .. } => assert_eq!(generation, 2),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(server.generation(), 2);

    for p in [&corrupt, &wrong_arch, &valid] {
        let _ = std::fs::remove_file(p);
    }
    server.shutdown();
}

#[test]
fn a_bad_generation_rolls_back_automatically_without_failing_clients() {
    let mut cfg = ServeConfig::new(SIDE);
    cfg.workers = 1;
    cfg.swap_window = 4;
    cfg.swap_max_failures = 1;
    let server = Server::start(cfg, model(10)).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();

    let artifact = tmp("rollback");
    save_model(&artifact, &model(11)).unwrap();
    match client.swap_model(1, artifact.to_str().unwrap()).unwrap() {
        Response::SwapOk { generation, .. } => assert_eq!(generation, 2),
        other => panic!("unexpected {other:?}"),
    }
    // Generation 2 "misbehaves": every batch against it panics.
    server.fault().panic_on_generation(2);

    // The very first classify trips the monitor; the per-request retry
    // then runs against the rolled-back (healthy) model, so the client
    // sees a normal answer — a bad swap costs zero client errors.
    match client.classify(2, &clip(1), 10_000).unwrap() {
        Response::Classify { id, .. } => assert_eq!(id, 2),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(
        server.generation(),
        3,
        "rollback republished the previous model as generation 3"
    );
    assert_eq!(server.metrics().counter("serve_rollbacks_total").get(), 1);

    // Steady state after rollback.
    for id in 10..14 {
        assert!(matches!(
            client.classify(id, &clip(id), 5_000).unwrap(),
            Response::Classify { .. }
        ));
    }
    let _ = std::fs::remove_file(&artifact);
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_requests_and_flushes_the_rest_typed() {
    let mut cfg = ServeConfig::new(SIDE);
    cfg.workers = 1;
    cfg.max_batch = 1;
    cfg.queue_capacity = 16;
    cfg.high_water = 12;
    cfg.low_water = 4;
    cfg.drain_timeout = Duration::from_millis(120);
    let server = Server::start(cfg, model(12)).unwrap();
    // Slow enough that a burst cannot drain inside the timeout.
    server.fault().set_slow_worker_ms(60);

    let mut client = ServeClient::connect(server.addr()).unwrap();
    let n = 10u64;
    for id in 1..=n {
        client
            .send(&Request::Classify {
                id,
                deadline_ms: 30_000,
                width: SIDE as u32,
                height: SIDE as u32,
                words: clip(id).as_words().to_vec(),
                trace_id: 0,
            })
            .unwrap();
    }
    // Give the reader a moment to admit the burst, then pull the plug.
    std::thread::sleep(Duration::from_millis(50));
    let report = server.shutdown();
    assert!(
        report.flushed > 0,
        "a 60 ms/batch worker cannot drain 10 jobs in 120 ms"
    );

    // Every admitted request was answered: some classified during the
    // drain window, the rest typed Shutdown.  Nothing vanished.
    let got = collect(&mut client, n as usize);
    let classified = got
        .values()
        .filter(|r| matches!(r, Response::Classify { .. }))
        .count();
    let shut = got
        .values()
        .filter(|r| matches!(r, Response::Error { code, .. } if *code == ErrorCode::Shutdown))
        .count();
    assert_eq!(classified + shut, n as usize, "{got:?}");
    assert_eq!(shut, report.flushed);
}

/// Issues one HTTP request on the serving port and returns the full
/// response text (status line + headers + body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read as _, Write as _};
    let mut http = std::net::TcpStream::connect(addr).unwrap();
    http.write_all(format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").as_bytes())
        .unwrap();
    let mut body = String::new();
    http.read_to_string(&mut body).unwrap();
    body
}

#[test]
fn http_endpoints_on_the_same_listener_route_by_path() {
    let server = Server::start(ServeConfig::new(SIDE), model(13)).unwrap();
    // Generate a little traffic first, with a known trace id.
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let resp = client.classify_traced(1, &clip(1), 5_000, 0xABCD).unwrap();
    match resp {
        Response::Classify { trace_id, .. } => {
            assert_eq!(trace_id, 0xABCD, "server echoes the client's trace id");
        }
        other => panic!("unexpected {other:?}"),
    }

    // /metrics: Prometheus text with proper HTTP/1.1 framing headers,
    // including the rolling-window gauges.
    let scrape = http_get(server.addr(), "/metrics");
    assert!(scrape.starts_with("HTTP/1.1 200 OK"), "{scrape}");
    assert!(scrape.contains("Content-Length:"), "{scrape}");
    assert!(scrape.contains("serve_requests_total"), "{scrape}");
    assert!(scrape.contains("serve_latency_ns"), "{scrape}");
    assert!(scrape.contains("serve_latency_window_p99_ns"), "{scrape}");
    assert!(scrape.contains("serve_request_rate_per_sec"), "{scrape}");
    assert!(scrape.contains("serve_drift_divergence"), "{scrape}");

    // /healthz: liveness JSON with queue depth and degrade state.
    let health = http_get(server.addr(), "/healthz");
    assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(health.contains("\"queue_depth\":"), "{health}");
    assert!(health.contains("\"degraded\":false"), "{health}");

    // /debug/requests: the flight recorder as JSONL, containing the
    // traced request's complete timeline.
    let dump = http_get(server.addr(), "/debug/requests");
    assert!(dump.starts_with("HTTP/1.1 200 OK"), "{dump}");
    let line = dump
        .lines()
        .find(|l| l.contains("\"trace_id\":\"000000000000abcd\""))
        .unwrap_or_else(|| panic!("traced request not in dump: {dump}"));
    let rec = hotspot_telemetry::RequestRecord::parse_jsonl(line).unwrap();
    assert!(rec.complete_timeline(), "all six stages recorded: {line}");
    assert_eq!(rec.request_id, 1);

    // Unknown paths are 404, not a metrics dump.
    let missing = http_get(server.addr(), "/nope");
    assert!(missing.starts_with("HTTP/1.1 404 Not Found"), "{missing}");
    assert!(!missing.contains("serve_requests_total"), "{missing}");

    // The binary-protocol metrics frame carries the same registry.
    let text = client.metrics_text().unwrap();
    assert!(text.contains("serve_requests_total"));
    server.shutdown();
}
