//! Loopback soak: concurrent clients, mixed deadlines, a mid-run
//! hot-swap, and one injected worker panic — with the invariant that
//! every request gets exactly one correctly-framed response carrying
//! its own id, and the server is still healthy at the end.
//!
//! CI runs this in release mode (`--test soak --release`); it also
//! passes unoptimized, just more slowly.

use hotspot_bnn::{BnnResNet, NetConfig, PackedBnn};
use hotspot_core::persist::save_model;
use hotspot_geometry::BitImage;
use hotspot_serve::{ErrorCode, Response, ServeClient, ServeConfig, Server};
use hotspot_telemetry::Outcome;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const SIDE: usize = 32;
const CLIENTS: u64 = 4;
const PER_CLIENT: u64 = 150;
/// One request is poisoned to panic its worker batch mid-run; its
/// typed Internal response still counts as answered.
const POISONED_ID: u64 = 2 * 10_000 + 77;

/// Client-chosen trace ids: nonzero and collision-free across clients,
/// so every request is retrievable from the flight recorder by an id
/// the test knows in advance.
fn trace_of(id: u64) -> u64 {
    0x5000_0000 + id
}

fn model(seed: u64) -> PackedBnn {
    let mut rng = StdRng::seed_from_u64(seed);
    PackedBnn::compile(&BnnResNet::new(&NetConfig::tiny(SIDE), &mut rng))
}

fn clip(variant: u64) -> BitImage {
    let mut img = BitImage::new(SIDE, SIDE);
    let step = 3 + (variant % 7) as usize;
    let mut y = (variant % 4) as usize;
    while y < SIDE {
        img.fill_row_span(y, 0, SIDE);
        y += step;
    }
    img
}

#[test]
fn soak_zero_lost_responses_across_swap_and_panic() {
    let mut cfg = ServeConfig::new(SIDE);
    cfg.workers = 2;
    cfg.max_batch = 8;
    cfg.queue_capacity = 64;
    let server = Arc::new(Server::start(cfg, model(100)).unwrap());
    server.fault().poison_request(POISONED_ID);

    let artifact =
        std::env::temp_dir().join(format!("serve_soak_swap_{}.brnn", std::process::id()));
    save_model(&artifact, &model(101)).unwrap();

    let answered = Arc::new(AtomicU64::new(0));
    let internals = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    // Request ids by outcome class, for the flight-recorder audit below.
    let classified_ids = Arc::new(Mutex::new(Vec::new()));
    let rejected_ids = Arc::new(Mutex::new(Vec::new()));

    let clients: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let server = Arc::clone(&server);
            let answered = Arc::clone(&answered);
            let internals = Arc::clone(&internals);
            let rejected = Arc::clone(&rejected);
            let classified_ids = Arc::clone(&classified_ids);
            let rejected_ids = Arc::clone(&rejected_ids);
            std::thread::Builder::new()
                .name(format!("soak-client-{t}"))
                .spawn(move || {
                    let mut client = ServeClient::connect(server.addr()).unwrap();
                    for i in 0..PER_CLIENT {
                        let id = t * 10_000 + i;
                        // Mixed budgets: mostly roomy, every 9th tight
                        // enough that it may (or may not) expire.
                        let deadline_ms = if i % 9 == 8 { 2 } else { 10_000 };
                        let resp = client
                            .classify_traced(id, &clip(id), deadline_ms, trace_of(id))
                            .unwrap_or_else(|e| panic!("client {t} req {id}: transport {e}"));
                        match resp {
                            Response::Classify {
                                id: rid, trace_id, ..
                            } => {
                                assert_eq!(rid, id, "response id matches request id");
                                assert_eq!(
                                    trace_id,
                                    trace_of(id),
                                    "response echoes the client's trace id"
                                );
                                answered.fetch_add(1, Ordering::Relaxed);
                                classified_ids.lock().unwrap().push(id);
                            }
                            Response::Error { id: rid, code, .. } => {
                                assert_eq!(rid, id);
                                match code {
                                    ErrorCode::Internal => {
                                        assert_eq!(
                                            id, POISONED_ID,
                                            "only the poisoned request may fail internally"
                                        );
                                        internals.fetch_add(1, Ordering::Relaxed);
                                    }
                                    ErrorCode::Deadline | ErrorCode::Overloaded => {
                                        rejected.fetch_add(1, Ordering::Relaxed);
                                        rejected_ids.lock().unwrap().push(id);
                                    }
                                    other => panic!("req {id}: unexpected error {other}"),
                                }
                            }
                            other => panic!("req {id}: unexpected {other:?}"),
                        }
                    }
                })
                .unwrap()
        })
        .collect();

    // Mid-run: hot-swap to the on-disk artifact while traffic flows.
    std::thread::sleep(Duration::from_millis(100));
    let mut admin = ServeClient::connect(server.addr()).unwrap();
    match admin
        .swap_model(9_000_000, artifact.to_str().unwrap())
        .unwrap()
    {
        Response::SwapOk { generation, .. } => assert!(generation >= 2),
        other => panic!("mid-run swap failed: {other:?}"),
    }

    for handle in clients {
        handle.join().expect("client thread panicked");
    }

    let total = answered.load(Ordering::Relaxed)
        + internals.load(Ordering::Relaxed)
        + rejected.load(Ordering::Relaxed);
    assert_eq!(
        total,
        CLIENTS * PER_CLIENT,
        "every request produced exactly one typed response"
    );
    assert_eq!(
        internals.load(Ordering::Relaxed),
        1,
        "the injected panic surfaced exactly once, as a typed Internal"
    );

    // Post-soak health: the panic was isolated and the swap stuck.
    assert!(admin.ping(9_000_001).unwrap());
    assert!(matches!(
        admin.classify(9_000_002, &clip(0), 5_000).unwrap(),
        Response::Classify { .. }
    ));
    assert!(server.generation() >= 2, "no rollback of the valid swap");
    assert!(
        server.metrics().counter("serve_worker_panics_total").get() >= 1,
        "the panic was counted"
    );
    // The wire never mis-framed: responses_total covers everything the
    // dispatcher answered.
    // The counter increments just after the reply is handed to the
    // writer thread, so the last read can race it by a few µs — poll
    // briefly instead of asserting an instantaneous value.
    let counter = server.metrics().counter("serve_responses_total");
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while counter.get() < total && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let responses = counter.get();
    assert!(
        responses >= total,
        "responses_total={responses} total={total}"
    );

    // Flight-recorder audit: every request the clients sent is
    // retrievable by its trace id.  Classified requests must carry a
    // complete six-stage timeline (admission → queue wait → batch →
    // dispatch → inference → reply) plus the M-level the cascade
    // spent; deadline-missed requests keep a complete (zero-inference)
    // timeline and a non-positive slack.  A record is filed just after
    // the reply is handed to the writer, so poll briefly like the
    // counter above.
    let flight = server.flight();
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while flight.total_recorded() < total && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    for &id in classified_ids.lock().unwrap().iter() {
        let rec = flight
            .find(trace_of(id))
            .unwrap_or_else(|| panic!("classified req {id} missing from the flight recorder"));
        assert_eq!(rec.request_id, id);
        assert_eq!(rec.outcome, Outcome::Ok, "req {id}: {rec:?}");
        assert!(
            rec.complete_timeline(),
            "req {id}: incomplete stage timeline {rec:?}"
        );
        assert!(rec.m_level >= 1, "req {id}: M-level not recorded {rec:?}");
        assert!(rec.batch_size >= 1, "req {id}: batch size missing {rec:?}");
    }
    for &id in rejected_ids.lock().unwrap().iter() {
        let rec = flight
            .find(trace_of(id))
            .unwrap_or_else(|| panic!("rejected req {id} missing from the flight recorder"));
        assert!(
            matches!(rec.outcome, Outcome::Deadline | Outcome::Shed),
            "req {id}: {rec:?}"
        );
        if rec.outcome == Outcome::Deadline {
            assert!(rec.complete_timeline(), "deadline req {id}: {rec:?}");
            assert!(
                rec.deadline_slack_ns <= 0,
                "deadline req {id} kept positive slack: {rec:?}"
            );
        }
    }
    // The poisoned request's typed Internal answer went through real
    // (panicking) inference — its timeline is complete too.
    let poisoned = flight
        .find(trace_of(POISONED_ID))
        .expect("poisoned request recorded");
    assert_eq!(poisoned.outcome, Outcome::Internal);
    assert!(poisoned.complete_timeline(), "{poisoned:?}");

    let _ = std::fs::remove_file(&artifact);
    let server = Arc::try_unwrap(server)
        .unwrap_or_else(|_| panic!("all client handles returned; sole owner expected"));
    server.shutdown();
}
