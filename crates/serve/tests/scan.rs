//! Integration tests for the full-chip `Scan` request: the server's
//! answer must match a local [`Scanner`] run with the same model and
//! config bit-for-bit, malformed scans are rejected with typed
//! `BadRequest`s, and scans pipeline cleanly alongside classify
//! traffic through the shared queue.

use hotspot_bnn::{scan_grid, BnnResNet, NetConfig, PackedBnn, ScanConfig, Scanner};
use hotspot_geometry::BitImage;
use hotspot_serve::{ErrorCode, Request, Response, ServeClient, ServeConfig, Server};
use hotspot_tensor::Workspace;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIDE: usize = 32;

/// An untrained M = 2 model — scans exercise the triage → confirm
/// cascade, and random weights still produce deterministic margins.
fn model(seed: u64) -> PackedBnn {
    let mut rng = StdRng::seed_from_u64(seed);
    PackedBnn::compile(&BnnResNet::new(
        &NetConfig::tiny(SIDE).with_levels(2),
        &mut rng,
    ))
}

/// A deterministic chip with enough geometry that some windows flip
/// hot under a random model.
fn chip(w: usize, h: usize, seed: u64) -> BitImage {
    let mut img = BitImage::new(w, h);
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    for y in 0..h {
        for x in 0..w {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (state >> 33) & 0x7 == 0 {
                img.set(x, y, true);
            }
        }
    }
    img
}

#[test]
fn scan_matches_local_scanner_bit_for_bit() {
    let m = model(11);
    let server = Server::start(ServeConfig::new(SIDE), model(11)).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();

    let image = chip(64, 64, 5);
    let stride = 16u32;
    let resp = client.scan(1, &image, stride, 5_000).unwrap();
    let Response::ScanRegions {
        id,
        regions,
        windows,
        escalated,
        degraded,
        trace_id,
    } = resp
    else {
        panic!("expected ScanRegions, got {resp:?}");
    };
    assert_eq!(id, 1);
    assert!(!degraded);
    assert_ne!(trace_id, 0, "server mints a trace id when we pass 0");

    let expect_windows =
        scan_grid(64, SIDE, stride as usize).len() * scan_grid(64, SIDE, stride as usize).len();
    assert_eq!(
        windows as usize, expect_windows,
        "9 windows on a 64x64 chip"
    );

    // The server uses the default cascade threshold (1.0) and dedup;
    // mirror that locally and demand identical output.
    let config = ScanConfig::new(stride as usize);
    let scanner = Scanner::new(&m, SIDE, config);
    let mut ws = Workspace::new();
    let local = scanner.scan(&image, &mut ws);
    assert_eq!(windows as usize, local.windows);
    assert_eq!(escalated as usize, local.escalated);
    assert_eq!(regions.len(), local.regions.len());
    for (hit, r) in regions.iter().zip(&local.regions) {
        assert_eq!(
            (hit.x0, hit.y0, hit.x1, hit.y1),
            (r.x0 as u32, r.y0 as u32, r.x1 as u32, r.y1 as u32)
        );
        assert_eq!(hit.score, r.score, "region score survives the wire");
        assert_eq!(hit.windows as usize, r.windows);
    }
    server.shutdown();
}

#[test]
fn scan_trace_id_is_echoed_and_recorded() {
    let server = Server::start(ServeConfig::new(SIDE), model(12)).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let image = chip(48, 40, 9);
    let resp = client
        .scan_traced(7, &image, SIDE as u32, 5_000, 0xC0FFEE)
        .unwrap();
    let Response::ScanRegions { trace_id, .. } = resp else {
        panic!("expected ScanRegions, got {resp:?}");
    };
    assert_eq!(trace_id, 0xC0FFEE);
    // The scan is retrievable from the flight recorder under its trace
    // id, like any classify.  The record is filed just after the reply
    // is handed to the writer thread, so poll briefly.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    let rec = loop {
        if let Some(rec) = server.flight().find(0xC0FFEE) {
            break rec;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "scan never filed in the flight recorder"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    assert_eq!(rec.request_id, 7);
    server.shutdown();
}

#[test]
fn malformed_scans_get_typed_rejections() {
    let server = Server::start(ServeConfig::new(SIDE), model(13)).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let image = chip(64, 64, 1);

    // Zero stride.
    let resp = client.scan(1, &image, 0, 1_000).unwrap();
    assert!(
        matches!(
            resp,
            Response::Error {
                id: 1,
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "zero stride: {resp:?}"
    );

    // Empty chip.
    let resp = client
        .request(&Request::Scan {
            id: 2,
            deadline_ms: 1_000,
            stride: 16,
            width: 0,
            height: 64,
            words: vec![],
            trace_id: 0,
        })
        .unwrap();
    assert!(
        matches!(
            resp,
            Response::Error {
                id: 2,
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "empty chip: {resp:?}"
    );

    // Word count that disagrees with the dimensions.
    let resp = client
        .request(&Request::Scan {
            id: 3,
            deadline_ms: 1_000,
            stride: 16,
            width: 64,
            height: 64,
            words: vec![0; 3],
            trace_id: 0,
        })
        .unwrap();
    assert!(
        matches!(
            resp,
            Response::Error {
                id: 3,
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "short words: {resp:?}"
    );

    // The server is still healthy.
    assert!(client.ping(4).unwrap());
    server.shutdown();
}

#[test]
fn scans_pipeline_alongside_classifies() {
    let server = Server::start(ServeConfig::new(SIDE), model(14)).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let clip = chip(SIDE, SIDE, 2);
    let big = chip(96, 64, 3);

    // Interleave pipelined classify and scan requests; every id gets
    // exactly one typed answer of the right shape.
    for id in 1..=10u64 {
        if id % 2 == 0 {
            client
                .send(&Request::Scan {
                    id,
                    deadline_ms: 5_000,
                    stride: SIDE as u32,
                    width: big.width() as u32,
                    height: big.height() as u32,
                    words: big.as_words().to_vec(),
                    trace_id: 0,
                })
                .unwrap();
        } else {
            client
                .send(&Request::Classify {
                    id,
                    deadline_ms: 5_000,
                    width: SIDE as u32,
                    height: SIDE as u32,
                    words: clip.as_words().to_vec(),
                    trace_id: 0,
                })
                .unwrap();
        }
    }
    let mut seen = std::collections::HashMap::new();
    for _ in 0..10 {
        let resp = client.read_response().unwrap();
        let id = match &resp {
            Response::Classify { id, .. } | Response::ScanRegions { id, .. } => *id,
            other => panic!("unexpected response {other:?}"),
        };
        assert!(seen.insert(id, resp).is_none(), "duplicate id {id}");
    }
    for (id, resp) in &seen {
        if id % 2 == 0 {
            assert!(matches!(resp, Response::ScanRegions { .. }), "{resp:?}");
        } else {
            assert!(matches!(resp, Response::Classify { .. }), "{resp:?}");
        }
    }
    server.shutdown();
}
