//! Deterministic fault injection for the serving core.
//!
//! A [`FaultPlan`] is a set of atomically-toggled trip wires the
//! integration tests arm to reproduce production failure modes on
//! demand, with zero cost when disarmed (one relaxed atomic load per
//! check).  The plan is compiled in unconditionally — the same
//! philosophy as `BnnTrainConfig::fault_nan_epoch` — because a fault
//! path that only exists in test builds is a fault path that ships
//! untested.
//!
//! Injection points:
//!
//! * **Slow worker** ([`slow_worker_ms`](FaultPlan::set_slow_worker_ms)):
//!   every worker sleeps before running a batch, forcing deadline
//!   expiries and queue growth without any timing races.
//! * **Poisoned request**
//!   ([`poison_request`](FaultPlan::poison_request)): the worker panics
//!   while executing any batch containing the given request id — the
//!   harness for panic isolation (the poisoned request must fail
//!   `Internal`, its batch-mates must still succeed).
//! * **Poisoned generation**
//!   ([`panic_on_generation`](FaultPlan::panic_on_generation)): every
//!   batch executed against the given model generation panics — the
//!   harness for the post-swap rollback monitor.
//! * **Failed canary** ([`fail_canary`](FaultPlan::set_fail_canary)):
//!   hot-swap canary validation reports failure regardless of the
//!   candidate model, exercising the swap-rejection path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Sentinel meaning "no id/generation armed" (request ids and
/// generations are both ≥ 1 in normal operation).
const NONE: u64 = 0;

/// Deterministic trip wires for serving failure modes (see module
/// docs).  All methods are lock-free and callable from any thread.
#[derive(Debug, Default)]
pub struct FaultPlan {
    slow_worker_ms: AtomicU64,
    poison_request_id: AtomicU64,
    panic_generation: AtomicU64,
    fail_canary: AtomicBool,
}

impl FaultPlan {
    /// A plan with every injection disarmed.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Arms (non-zero) or disarms (zero) the per-batch worker sleep.
    pub fn set_slow_worker_ms(&self, ms: u64) {
        self.slow_worker_ms.store(ms, Ordering::Relaxed);
    }

    /// The armed per-batch sleep, if any.
    pub fn slow_worker_ms(&self) -> Option<u64> {
        match self.slow_worker_ms.load(Ordering::Relaxed) {
            0 => None,
            ms => Some(ms),
        }
    }

    /// Arms a panic for any batch containing request `id`.
    pub fn poison_request(&self, id: u64) {
        self.poison_request_id.store(id, Ordering::Relaxed);
    }

    /// Disarms the poisoned request.
    pub fn clear_poison_request(&self) {
        self.poison_request_id.store(NONE, Ordering::Relaxed);
    }

    /// `true` when request `id` is the armed poison.
    pub fn is_poisoned_request(&self, id: u64) -> bool {
        let armed = self.poison_request_id.load(Ordering::Relaxed);
        armed != NONE && armed == id
    }

    /// Arms a panic for every batch run against model generation `g`.
    pub fn panic_on_generation(&self, g: u64) {
        self.panic_generation.store(g, Ordering::Relaxed);
    }

    /// `true` when generation `g` is armed to panic.
    pub fn is_poisoned_generation(&self, g: u64) -> bool {
        let armed = self.panic_generation.load(Ordering::Relaxed);
        armed != NONE && armed == g
    }

    /// Forces (`true`) or restores (`false`) canary-validation failure.
    pub fn set_fail_canary(&self, fail: bool) {
        self.fail_canary.store(fail, Ordering::Relaxed);
    }

    /// `true` when the canary is armed to fail.
    pub fn fail_canary(&self) -> bool {
        self.fail_canary.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_starts_disarmed() {
        let f = FaultPlan::new();
        assert_eq!(f.slow_worker_ms(), None);
        assert!(!f.is_poisoned_request(1));
        assert!(!f.is_poisoned_generation(1));
        assert!(!f.fail_canary());
    }

    #[test]
    fn arming_and_disarming_round_trips() {
        let f = FaultPlan::new();
        f.set_slow_worker_ms(25);
        assert_eq!(f.slow_worker_ms(), Some(25));
        f.set_slow_worker_ms(0);
        assert_eq!(f.slow_worker_ms(), None);

        f.poison_request(42);
        assert!(f.is_poisoned_request(42));
        assert!(!f.is_poisoned_request(43));
        f.clear_poison_request();
        assert!(!f.is_poisoned_request(42));

        f.panic_on_generation(2);
        assert!(f.is_poisoned_generation(2));
        assert!(!f.is_poisoned_generation(3));

        f.set_fail_canary(true);
        assert!(f.fail_canary());
        f.set_fail_canary(false);
        assert!(!f.fail_canary());
    }

    #[test]
    fn zero_is_never_poisoned() {
        // Id 0 doubles as the "disarmed" sentinel; a disarmed plan must
        // not treat it as armed.
        let f = FaultPlan::new();
        assert!(!f.is_poisoned_request(0));
        assert!(!f.is_poisoned_generation(0));
    }
}
