//! A small blocking client for the serving protocol, used by the
//! integration tests, the soak harness, the benchmark, and the
//! example.
//!
//! The protocol allows pipelining (responses carry the request id), so
//! the client exposes both a lock-step [`request`](ServeClient::request)
//! helper and split [`send`](ServeClient::send) /
//! [`read_response`](ServeClient::read_response) halves for callers
//! that keep several requests in flight and match replies by id.

use crate::proto::{
    decode_response, encode_request, read_frame_body, write_frame, FrameError, Request, Response,
    MAX_FRAME_LEN,
};
use hotspot_geometry::BitImage;
use std::error::Error;
use std::fmt;
use std::io::{self, Read};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A failed client operation.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (including the server closing the
    /// connection).
    Io(io::Error),
    /// The server sent bytes that do not decode as a response.
    Frame(FrameError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Frame(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ClientError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Frame(e) => Some(e),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A blocking connection to a hotspot server (see module docs).
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects with a generous read timeout so a wedged server fails
    /// a test instead of hanging it.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(ServeClient { stream })
    }

    /// Sends a request without waiting for the reply (pipelining).
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        write_frame(&mut self.stream, &encode_request(req))
    }

    /// Writes raw bytes straight to the socket — the corrupt-frame
    /// test harness.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.stream.write_all(bytes)
    }

    /// Reads the next response frame.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport failure or a malformed
    /// frame.
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        let mut prefix = [0u8; 4];
        self.stream.read_exact(&mut prefix)?;
        let payload = read_frame_body(&mut self.stream, prefix, MAX_FRAME_LEN)??;
        Ok(decode_response(&payload)?)
    }

    /// Sends one request and reads one response (lock-step).
    ///
    /// # Errors
    ///
    /// As [`read_response`](ServeClient::read_response).
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        self.read_response()
    }

    /// Classifies one clip: builds the `Classify` request from a
    /// [`BitImage`] and returns the server's (typed) answer, which may
    /// be a `Classify` result or an `Error` rejection.
    ///
    /// # Errors
    ///
    /// As [`read_response`](ServeClient::read_response).
    pub fn classify(
        &mut self,
        id: u64,
        image: &BitImage,
        deadline_ms: u32,
    ) -> Result<Response, ClientError> {
        self.classify_traced(id, image, deadline_ms, 0)
    }

    /// As [`classify`](ServeClient::classify), carrying a caller-chosen
    /// trace id (non-zero) that the server threads through its flight
    /// recorder — the request becomes retrievable from
    /// `GET /debug/requests` under this id.  Pass 0 to let the server
    /// mint one (echoed in the `Classify` response).
    ///
    /// # Errors
    ///
    /// As [`read_response`](ServeClient::read_response).
    pub fn classify_traced(
        &mut self,
        id: u64,
        image: &BitImage,
        deadline_ms: u32,
        trace_id: u64,
    ) -> Result<Response, ClientError> {
        self.request(&Request::Classify {
            id,
            deadline_ms,
            width: image.width() as u32,
            height: image.height() as u32,
            words: image.as_words().to_vec(),
            trace_id,
        })
    }

    /// Scans a full-chip raster for hotspot regions: builds the `Scan`
    /// request from a [`BitImage`] and returns the server's typed
    /// answer — `ScanRegions` or an `Error` rejection.
    ///
    /// # Errors
    ///
    /// As [`read_response`](ServeClient::read_response).
    pub fn scan(
        &mut self,
        id: u64,
        image: &BitImage,
        stride: u32,
        deadline_ms: u32,
    ) -> Result<Response, ClientError> {
        self.scan_traced(id, image, stride, deadline_ms, 0)
    }

    /// As [`scan`](ServeClient::scan), carrying a caller-chosen trace
    /// id (non-zero); pass 0 to let the server mint one.
    ///
    /// # Errors
    ///
    /// As [`read_response`](ServeClient::read_response).
    pub fn scan_traced(
        &mut self,
        id: u64,
        image: &BitImage,
        stride: u32,
        deadline_ms: u32,
        trace_id: u64,
    ) -> Result<Response, ClientError> {
        self.request(&Request::Scan {
            id,
            deadline_ms,
            stride,
            width: image.width() as u32,
            height: image.height() as u32,
            words: image.as_words().to_vec(),
            trace_id,
        })
    }

    /// Liveness probe; `true` when the server answered the ping.
    ///
    /// # Errors
    ///
    /// As [`read_response`](ServeClient::read_response).
    pub fn ping(&mut self, id: u64) -> Result<bool, ClientError> {
        Ok(matches!(
            self.request(&Request::Ping { id })?,
            Response::Pong { id: got } if got == id
        ))
    }

    /// Fetches the Prometheus metrics text over the binary protocol.
    ///
    /// # Errors
    ///
    /// As [`read_response`](ServeClient::read_response), plus a frame
    /// error when the server answers with anything else.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::MetricsText(text) => Ok(text),
            other => Err(ClientError::Frame(FrameError(format!(
                "expected metrics text, got {other:?}"
            )))),
        }
    }

    /// Asks the server to hot-swap to the artifact at `path`
    /// (server-local).  Returns the typed response — `SwapOk` or an
    /// `Error { code: SwapFailed, .. }`.
    ///
    /// # Errors
    ///
    /// As [`read_response`](ServeClient::read_response).
    pub fn swap_model(&mut self, id: u64, path: &str) -> Result<Response, ClientError> {
        self.request(&Request::SwapModel {
            id,
            path: path.to_string(),
        })
    }

    /// Fetches the serving status snapshot.
    ///
    /// # Errors
    ///
    /// As [`read_response`](ServeClient::read_response).
    pub fn stats(&mut self, id: u64) -> Result<Response, ClientError> {
        self.request(&Request::Stats { id })
    }
}
