//! The serving wire protocol: length-prefixed frames over TCP.
//!
//! Every message is `[u32 LE payload length][payload]`; the first
//! payload byte is the message type and the rest is a
//! `hotspot_tensor::wire` little-endian body.  Requests carry a caller
//! chosen `id` that the matching response echoes, so clients may
//! pipeline requests and match replies out of order.
//!
//! The same listener also answers plain `GET` HTTP requests with the
//! Prometheus metrics text — the server sniffs the first four bytes,
//! which for the binary protocol are a frame length and for a scrape
//! are the ASCII `"GET "` (0x20544547, ~545 MiB as a length: far above
//! any sane [`MAX_FRAME_LEN`], so the two framings cannot collide).
//!
//! Decoding is fully typed: a malformed payload yields a
//! [`FrameError`], never a panic, and the server answers it with an
//! [`ErrorCode::CorruptFrame`] response before closing the connection.

use hotspot_tensor::{WireError, WireReader, WireWriter};
use std::fmt;
use std::io::{Read, Write};

/// Hard ceiling on a frame payload, sanity-checking the length prefix
/// before any allocation (a 2048×2048 clip is ~0.5 MiB; 16 MiB leaves
/// generous headroom).
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Request type bytes.
const T_CLASSIFY: u8 = 0x01;
const T_PING: u8 = 0x02;
const T_METRICS: u8 = 0x03;
const T_SWAP: u8 = 0x04;
const T_STATS: u8 = 0x05;
const T_SCAN: u8 = 0x06;

/// Response type bytes (request type | 0x80).
const T_R_CLASSIFY: u8 = 0x81;
const T_R_ERROR: u8 = 0x82;
const T_R_METRICS: u8 = 0x83;
const T_R_PONG: u8 = 0x84;
const T_R_SWAP_OK: u8 = 0x85;
const T_R_STATS: u8 = 0x86;
const T_R_SCAN: u8 = 0x87;

/// A malformed frame (bad length prefix, unknown type byte, or a
/// payload that fails structural decode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError(pub String);

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame error: {}", self.0)
    }
}

impl std::error::Error for FrameError {}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError(e.0)
    }
}

/// Typed rejection causes a client can observe.  The numeric value is
/// the wire byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request's latency deadline expired before a worker reached
    /// it.
    Deadline = 1,
    /// The bounded queue was past its high-water mark; the request was
    /// shed without being enqueued.
    Overloaded = 2,
    /// The worker processing this request panicked (or another internal
    /// failure); other requests in the same batch are unaffected.
    Internal = 3,
    /// The request itself was invalid (wrong clip size, inconsistent
    /// raster words).
    BadRequest = 4,
    /// The server is draining for shutdown and will not accept or
    /// finish this request.
    Shutdown = 5,
    /// A model hot-swap was rejected (load error, architecture
    /// mismatch, or failed canary).
    SwapFailed = 6,
    /// The frame could not be decoded; the connection closes after
    /// this response.
    CorruptFrame = 7,
}

impl ErrorCode {
    fn from_u8(b: u8) -> Result<Self, FrameError> {
        Ok(match b {
            1 => ErrorCode::Deadline,
            2 => ErrorCode::Overloaded,
            3 => ErrorCode::Internal,
            4 => ErrorCode::BadRequest,
            5 => ErrorCode::Shutdown,
            6 => ErrorCode::SwapFailed,
            7 => ErrorCode::CorruptFrame,
            _ => return Err(FrameError(format!("unknown error code {b}"))),
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::Deadline => "deadline",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Internal => "internal",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::SwapFailed => "swap-failed",
            ErrorCode::CorruptFrame => "corrupt-frame",
        };
        write!(f, "{name}")
    }
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Classify one clip, given as a bit-packed raster (the
    /// `BitImage` word layout: rows of `ceil(width/64)` u64 words).
    /// `deadline_ms == 0` means "use the server's default deadline".
    Classify {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// Per-request latency budget in milliseconds from arrival.
        deadline_ms: u32,
        /// Clip width in pixels.
        width: u32,
        /// Clip height in pixels.
        height: u32,
        /// Bit-packed raster words.
        words: Vec<u64>,
        /// Client-supplied trace id, or 0 to let the server mint one at
        /// admission.  Encoded as an *optional trailing* field: frames
        /// from older clients simply omit it and still parse.
        trace_id: u64,
    },
    /// Liveness probe.
    Ping {
        /// Echoed id.
        id: u64,
    },
    /// Prometheus metrics over the binary protocol (the HTTP `GET`
    /// path returns the same text).
    Metrics,
    /// Load, validate, and atomically publish a new model artifact.
    SwapModel {
        /// Echoed id.
        id: u64,
        /// Server-local path of a `BRNNHS` artifact.
        path: String,
    },
    /// Serving status snapshot.
    Stats {
        /// Echoed id.
        id: u64,
    },
    /// Scan a full-chip raster for hotspot regions with the streaming
    /// scanner (window-reuse + cascade + region merging).
    Scan {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// Per-request latency budget in milliseconds from arrival.
        deadline_ms: u32,
        /// Window grid stride in pixels.
        stride: u32,
        /// Chip width in pixels.
        width: u32,
        /// Chip height in pixels.
        height: u32,
        /// Bit-packed chip raster words (`BitImage` layout).
        words: Vec<u64>,
        /// Client-supplied trace id, or 0 to let the server mint one
        /// (optional trailing field, like `Classify`).
        trace_id: u64,
    },
}

/// One merged hotspot region in a [`Response::ScanRegions`] reply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanHit {
    /// Left edge, chip pixels.
    pub x0: u32,
    /// Top edge.
    pub y0: u32,
    /// Right edge (exclusive, clamped to the chip).
    pub x1: u32,
    /// Bottom edge (exclusive).
    pub y1: u32,
    /// Best member-window margin.
    pub score: f32,
    /// Member window count.
    pub windows: u32,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A classification result.
    Classify {
        /// The request id.
        id: u64,
        /// The decision (logit margin ≥ 0).
        hotspot: bool,
        /// The logit margin (hotspot − non-hotspot) that produced it.
        margin: f32,
        /// `true` when the server was in triage-only degradation and
        /// skipped the confirmation stage.
        degraded: bool,
        /// `true` when the cascade escalated this clip to the full
        /// M-level confirmation pass.
        escalated: bool,
        /// The trace id that indexes this request in the flight
        /// recorder (`GET /debug/requests`).  Optional trailing field;
        /// 0 from servers that predate tracing.
        trace_id: u64,
    },
    /// A typed rejection.
    Error {
        /// The request id (0 when the request could not be decoded far
        /// enough to learn it).
        id: u64,
        /// Why the request was rejected.
        code: ErrorCode,
        /// Human-readable detail.
        msg: String,
    },
    /// Prometheus metrics text.
    MetricsText(String),
    /// Ping reply.
    Pong {
        /// The request id.
        id: u64,
    },
    /// A hot-swap succeeded.
    SwapOk {
        /// The request id.
        id: u64,
        /// The model generation now serving.
        generation: u64,
    },
    /// Serving status.
    Stats {
        /// The request id.
        id: u64,
        /// Current model generation.
        generation: u64,
        /// `true` while the degradation ladder is in triage-only mode.
        degraded: bool,
        /// Requests currently queued.
        queue_depth: u64,
    },
    /// A full-chip scan result.
    ScanRegions {
        /// The request id.
        id: u64,
        /// Merged hotspot regions, best score first.
        regions: Vec<ScanHit>,
        /// Window positions scored.
        windows: u32,
        /// Windows the confirm stage re-scored.
        escalated: u32,
        /// `true` when triage-only degradation skipped confirmation.
        degraded: bool,
        /// Flight-recorder trace id (optional trailing field).
        trace_id: u64,
    },
}

fn put_string(w: &mut WireWriter, s: &str) {
    w.put_usize(s.len());
    w.put_raw(s.as_bytes());
}

fn get_string(r: &mut WireReader<'_>) -> Result<String, FrameError> {
    let len = r.get_count(1)?;
    let mut bytes = Vec::with_capacity(len);
    for _ in 0..len {
        bytes.push(r.get_u8()?);
    }
    String::from_utf8(bytes).map_err(|_| FrameError("string is not UTF-8".into()))
}

/// Encodes a request as a complete frame (length prefix included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = WireWriter::new();
    match req {
        Request::Classify {
            id,
            deadline_ms,
            width,
            height,
            words,
            trace_id,
        } => {
            w.put_u8(T_CLASSIFY);
            w.put_u64(*id);
            w.put_u32(*deadline_ms);
            w.put_u32(*width);
            w.put_u32(*height);
            w.put_u64_slice(words);
            // Optional trailing field: only written when set, so the
            // zero case stays byte-identical to the pre-tracing frame.
            if *trace_id != 0 {
                w.put_u64(*trace_id);
            }
        }
        Request::Ping { id } => {
            w.put_u8(T_PING);
            w.put_u64(*id);
        }
        Request::Metrics => w.put_u8(T_METRICS),
        Request::SwapModel { id, path } => {
            w.put_u8(T_SWAP);
            w.put_u64(*id);
            put_string(&mut w, path);
        }
        Request::Stats { id } => {
            w.put_u8(T_STATS);
            w.put_u64(*id);
        }
        Request::Scan {
            id,
            deadline_ms,
            stride,
            width,
            height,
            words,
            trace_id,
        } => {
            w.put_u8(T_SCAN);
            w.put_u64(*id);
            w.put_u32(*deadline_ms);
            w.put_u32(*stride);
            w.put_u32(*width);
            w.put_u32(*height);
            w.put_u64_slice(words);
            if *trace_id != 0 {
                w.put_u64(*trace_id);
            }
        }
    }
    frame(w.into_bytes())
}

/// Decodes a request payload (the bytes after the length prefix).
///
/// # Errors
///
/// Returns [`FrameError`] on an empty payload, unknown type byte,
/// truncated body, or trailing bytes.
pub fn decode_request(payload: &[u8]) -> Result<Request, FrameError> {
    let mut r = WireReader::new(payload);
    let ty = r.get_u8().map_err(|_| FrameError("empty frame".into()))?;
    let req = match ty {
        T_CLASSIFY => Request::Classify {
            id: r.get_u64()?,
            deadline_ms: r.get_u32()?,
            width: r.get_u32()?,
            height: r.get_u32()?,
            words: r.get_u64_vec()?,
            trace_id: if r.remaining() > 0 { r.get_u64()? } else { 0 },
        },
        T_PING => Request::Ping { id: r.get_u64()? },
        T_METRICS => Request::Metrics,
        T_SWAP => Request::SwapModel {
            id: r.get_u64()?,
            path: get_string(&mut r)?,
        },
        T_STATS => Request::Stats { id: r.get_u64()? },
        T_SCAN => Request::Scan {
            id: r.get_u64()?,
            deadline_ms: r.get_u32()?,
            stride: r.get_u32()?,
            width: r.get_u32()?,
            height: r.get_u32()?,
            words: r.get_u64_vec()?,
            trace_id: if r.remaining() > 0 { r.get_u64()? } else { 0 },
        },
        b => return Err(FrameError(format!("unknown request type byte {b:#04x}"))),
    };
    if r.remaining() != 0 {
        return Err(FrameError(format!(
            "{} trailing bytes after request",
            r.remaining()
        )));
    }
    Ok(req)
}

/// Encodes a response as a complete frame (length prefix included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut w = WireWriter::new();
    match resp {
        Response::Classify {
            id,
            hotspot,
            margin,
            degraded,
            escalated,
            trace_id,
        } => {
            w.put_u8(T_R_CLASSIFY);
            w.put_u64(*id);
            w.put_bool(*hotspot);
            w.put_f32(*margin);
            w.put_bool(*degraded);
            w.put_bool(*escalated);
            if *trace_id != 0 {
                w.put_u64(*trace_id);
            }
        }
        Response::Error { id, code, msg } => {
            w.put_u8(T_R_ERROR);
            w.put_u64(*id);
            w.put_u8(*code as u8);
            put_string(&mut w, msg);
        }
        Response::MetricsText(text) => {
            w.put_u8(T_R_METRICS);
            put_string(&mut w, text);
        }
        Response::Pong { id } => {
            w.put_u8(T_R_PONG);
            w.put_u64(*id);
        }
        Response::SwapOk { id, generation } => {
            w.put_u8(T_R_SWAP_OK);
            w.put_u64(*id);
            w.put_u64(*generation);
        }
        Response::Stats {
            id,
            generation,
            degraded,
            queue_depth,
        } => {
            w.put_u8(T_R_STATS);
            w.put_u64(*id);
            w.put_u64(*generation);
            w.put_bool(*degraded);
            w.put_u64(*queue_depth);
        }
        Response::ScanRegions {
            id,
            regions,
            windows,
            escalated,
            degraded,
            trace_id,
        } => {
            w.put_u8(T_R_SCAN);
            w.put_u64(*id);
            w.put_u32(*windows);
            w.put_u32(*escalated);
            w.put_bool(*degraded);
            w.put_usize(regions.len());
            for hit in regions {
                w.put_u32(hit.x0);
                w.put_u32(hit.y0);
                w.put_u32(hit.x1);
                w.put_u32(hit.y1);
                w.put_f32(hit.score);
                w.put_u32(hit.windows);
            }
            if *trace_id != 0 {
                w.put_u64(*trace_id);
            }
        }
    }
    frame(w.into_bytes())
}

/// Decodes a response payload (the bytes after the length prefix).
///
/// # Errors
///
/// Returns [`FrameError`] on an empty payload, unknown type byte,
/// truncated body, or trailing bytes.
pub fn decode_response(payload: &[u8]) -> Result<Response, FrameError> {
    let mut r = WireReader::new(payload);
    let ty = r.get_u8().map_err(|_| FrameError("empty frame".into()))?;
    let resp = match ty {
        T_R_CLASSIFY => Response::Classify {
            id: r.get_u64()?,
            hotspot: r.get_bool()?,
            margin: r.get_f32()?,
            degraded: r.get_bool()?,
            escalated: r.get_bool()?,
            trace_id: if r.remaining() > 0 { r.get_u64()? } else { 0 },
        },
        T_R_ERROR => Response::Error {
            id: r.get_u64()?,
            code: ErrorCode::from_u8(r.get_u8()?)?,
            msg: get_string(&mut r)?,
        },
        T_R_METRICS => Response::MetricsText(get_string(&mut r)?),
        T_R_PONG => Response::Pong { id: r.get_u64()? },
        T_R_SWAP_OK => Response::SwapOk {
            id: r.get_u64()?,
            generation: r.get_u64()?,
        },
        T_R_STATS => Response::Stats {
            id: r.get_u64()?,
            generation: r.get_u64()?,
            degraded: r.get_bool()?,
            queue_depth: r.get_u64()?,
        },
        T_R_SCAN => {
            let id = r.get_u64()?;
            let windows = r.get_u32()?;
            let escalated = r.get_u32()?;
            let degraded = r.get_bool()?;
            let count = r.get_count(24)?;
            let mut regions = Vec::with_capacity(count);
            for _ in 0..count {
                regions.push(ScanHit {
                    x0: r.get_u32()?,
                    y0: r.get_u32()?,
                    x1: r.get_u32()?,
                    y1: r.get_u32()?,
                    score: r.get_f32()?,
                    windows: r.get_u32()?,
                });
            }
            Response::ScanRegions {
                id,
                regions,
                windows,
                escalated,
                degraded,
                trace_id: if r.remaining() > 0 { r.get_u64()? } else { 0 },
            }
        }
        b => return Err(FrameError(format!("unknown response type byte {b:#04x}"))),
    };
    if r.remaining() != 0 {
        return Err(FrameError(format!(
            "{} trailing bytes after response",
            r.remaining()
        )));
    }
    Ok(resp)
}

/// Prepends the length prefix to a payload.
fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Reads one frame payload from a stream, given its already-read
/// 4-byte length prefix.
///
/// # Errors
///
/// Returns `Ok(Err(FrameError))` when the advertised length exceeds
/// `max_len` (protocol violation, connection should close) and
/// `Err(io)` on transport failure or truncation mid-payload.
pub fn read_frame_body<R: Read>(
    stream: &mut R,
    len_prefix: [u8; 4],
    max_len: usize,
) -> std::io::Result<Result<Vec<u8>, FrameError>> {
    let len = u32::from_le_bytes(len_prefix) as usize;
    if len > max_len {
        return Ok(Err(FrameError(format!(
            "frame length {len} exceeds the {max_len}-byte limit"
        ))));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Ok(payload))
}

/// Writes a pre-encoded frame to a stream.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_frame<W: Write>(stream: &mut W, frame: &[u8]) -> std::io::Result<()> {
    stream.write_all(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip(frame: Vec<u8>) -> Vec<u8> {
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4, "length prefix covers the payload");
        frame[4..].to_vec()
    }

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            Request::Classify {
                id: 42,
                deadline_ms: 250,
                width: 64,
                height: 64,
                words: vec![0xDEAD_BEEF; 64],
                trace_id: 0,
            },
            Request::Classify {
                id: 43,
                deadline_ms: 250,
                width: 64,
                height: 64,
                words: vec![0xDEAD_BEEF; 64],
                trace_id: 0xFACE_FEED,
            },
            Request::Scan {
                id: 44,
                deadline_ms: 5000,
                stride: 64,
                width: 512,
                height: 256,
                words: vec![0xAAAA_5555; 8 * 256],
                trace_id: 0,
            },
            Request::Scan {
                id: 45,
                deadline_ms: 0,
                stride: 128,
                width: 128,
                height: 128,
                words: vec![1; 2 * 128],
                trace_id: 0xBEEF,
            },
            Request::Ping { id: 7 },
            Request::Metrics,
            Request::SwapModel {
                id: 9,
                path: "/tmp/model.brnn".into(),
            },
            Request::Stats { id: 11 },
        ];
        for req in cases {
            let payload = strip(encode_request(&req));
            assert_eq!(decode_request(&payload).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Classify {
                id: 1,
                hotspot: true,
                margin: -0.75,
                degraded: false,
                escalated: true,
                trace_id: 0,
            },
            Response::Classify {
                id: 6,
                hotspot: false,
                margin: 0.25,
                degraded: true,
                escalated: false,
                trace_id: 0x1234_5678_9ABC,
            },
            Response::Error {
                id: 2,
                code: ErrorCode::Overloaded,
                msg: "queue full".into(),
            },
            Response::MetricsText("# HELP x\n".into()),
            Response::Pong { id: 3 },
            Response::SwapOk {
                id: 4,
                generation: 2,
            },
            Response::Stats {
                id: 5,
                generation: 3,
                degraded: true,
                queue_depth: 17,
            },
            Response::ScanRegions {
                id: 8,
                regions: vec![],
                windows: 25,
                escalated: 0,
                degraded: false,
                trace_id: 0,
            },
            Response::ScanRegions {
                id: 9,
                regions: vec![
                    ScanHit {
                        x0: 0,
                        y0: 64,
                        x1: 256,
                        y1: 192,
                        score: 3.25,
                        windows: 4,
                    },
                    ScanHit {
                        x0: 448,
                        y0: 0,
                        x1: 512,
                        y1: 128,
                        score: 0.5,
                        windows: 1,
                    },
                ],
                windows: 49,
                escalated: 6,
                degraded: true,
                trace_id: 0xABCD,
            },
        ];
        for resp in cases {
            let payload = strip(encode_response(&resp));
            assert_eq!(decode_response(&payload).unwrap(), resp);
        }
    }

    #[test]
    fn pre_tracing_classify_frames_still_parse() {
        // A frame without the trailing trace id — exactly what an old
        // client sends — decodes with trace_id 0; and a zero trace id
        // encodes byte-identically to the old framing, so old servers
        // can also read new clients that don't opt in.
        let old_style = strip(encode_request(&Request::Classify {
            id: 5,
            deadline_ms: 100,
            width: 32,
            height: 32,
            words: vec![7, 8],
            trace_id: 0,
        }));
        let traced = strip(encode_request(&Request::Classify {
            id: 5,
            deadline_ms: 100,
            width: 32,
            height: 32,
            words: vec![7, 8],
            trace_id: 99,
        }));
        assert_eq!(traced.len(), old_style.len() + 8);
        match decode_request(&old_style).unwrap() {
            Request::Classify { trace_id, .. } => assert_eq!(trace_id, 0),
            other => panic!("unexpected {other:?}"),
        }
        let old_resp = strip(encode_response(&Response::Classify {
            id: 5,
            hotspot: true,
            margin: 1.5,
            degraded: false,
            escalated: false,
            trace_id: 0,
        }));
        match decode_response(&old_resp).unwrap() {
            Response::Classify { trace_id, .. } => assert_eq!(trace_id, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn truncated_and_unknown_frames_are_typed_errors() {
        let payload = strip(encode_request(&Request::Classify {
            id: 1,
            deadline_ms: 0,
            width: 32,
            height: 32,
            words: vec![1, 2, 3],
            trace_id: 0,
        }));
        // Every strict prefix of a valid payload must fail cleanly.
        for cut in 0..payload.len() {
            assert!(
                decode_request(&payload[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        let scan = strip(encode_request(&Request::Scan {
            id: 1,
            deadline_ms: 0,
            stride: 32,
            width: 64,
            height: 64,
            words: vec![1, 2, 3],
            trace_id: 0,
        }));
        for cut in 0..scan.len() {
            assert!(
                decode_request(&scan[..cut]).is_err(),
                "scan prefix of {cut} bytes decoded"
            );
        }
        let scan_resp = strip(encode_response(&Response::ScanRegions {
            id: 1,
            regions: vec![ScanHit {
                x0: 0,
                y0: 0,
                x1: 64,
                y1: 64,
                score: 1.0,
                windows: 1,
            }],
            windows: 9,
            escalated: 1,
            degraded: false,
            trace_id: 0,
        }));
        for cut in 1..scan_resp.len() {
            assert!(
                decode_response(&scan_resp[..cut]).is_err(),
                "scan response prefix of {cut} bytes decoded"
            );
        }
        assert!(decode_request(&[0x7F]).is_err(), "unknown type byte");
        assert!(decode_response(&[0x10]).is_err(), "unknown response type");
        // Trailing garbage after a valid body is rejected too.
        let mut padded = strip(encode_request(&Request::Ping { id: 1 }));
        padded.push(0);
        assert!(decode_request(&padded).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let prefix = (u32::MAX).to_le_bytes();
        let mut empty: &[u8] = &[];
        let result = read_frame_body(&mut empty, prefix, MAX_FRAME_LEN).unwrap();
        assert!(result.is_err(), "4 GiB frame must be refused");
    }

    #[test]
    fn error_codes_round_trip_and_get_prefix_cannot_be_a_frame() {
        for code in [
            ErrorCode::Deadline,
            ErrorCode::Overloaded,
            ErrorCode::Internal,
            ErrorCode::BadRequest,
            ErrorCode::Shutdown,
            ErrorCode::SwapFailed,
            ErrorCode::CorruptFrame,
        ] {
            assert_eq!(ErrorCode::from_u8(code as u8).unwrap(), code);
        }
        assert!(ErrorCode::from_u8(0).is_err());
        // The HTTP sniff: "GET " as a little-endian length is far past
        // MAX_FRAME_LEN, so a binary frame can never start with it.
        let as_len = u32::from_le_bytes(*b"GET ") as usize;
        assert!(as_len > MAX_FRAME_LEN);
    }
}
