//! Model hot-swap: load → validate → atomic publish → watch →
//! auto-rollback.
//!
//! A swap request walks a strict validation ladder before any traffic
//! sees the candidate model:
//!
//! 1. **Integrity** — [`load_model`] verifies the artifact's CRC32
//!    footer; a truncated or bit-flipped file fails here with a typed
//!    [`PersistError`].
//! 2. **Architecture** — the candidate's
//!    [`arch_fingerprint`](PackedBnn::arch_fingerprint) must equal the
//!    serving model's: same topology, strides, scaling mode, and level
//!    count.  Weights may differ (that is the point); shape may not.
//! 3. **Canary** — a synthetic batch runs through the candidate under
//!    `catch_unwind`; panics or non-finite logits reject the swap.
//!
//! Only then does [`ModelSlot::swap`] publish the candidate.  The old
//! `Arc` is retained by a [`SwapMonitor`] that watches the first
//! `window` batches of the new generation: if `max_failures` of them
//! panic, the monitor swaps the retained model straight back (a fresh
//! generation — rollback is itself a swap) without touching the disk.
//! A generation that survives its window is accepted and the retained
//! model is released.

use crate::fault::FaultPlan;
use hotspot_bnn::{ModelSlot, PackedBnn};
use hotspot_core::persist::{load_model, PersistError};
use hotspot_tensor::Workspace;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Why a hot-swap was rejected (the model in service is untouched).
#[derive(Debug)]
pub enum SwapError {
    /// The artifact failed to load (I/O, bad header, CRC mismatch, or
    /// corrupt payload).
    Load(PersistError),
    /// The candidate's architecture differs from the serving model's.
    ArchMismatch {
        /// Fingerprint of the model in service.
        serving: u32,
        /// Fingerprint of the rejected candidate.
        candidate: u32,
    },
    /// The canary batch panicked or produced non-finite logits.
    CanaryFailed(String),
}

impl fmt::Display for SwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapError::Load(e) => write!(f, "artifact rejected: {e}"),
            SwapError::ArchMismatch { serving, candidate } => write!(
                f,
                "architecture fingerprint {candidate:08x} does not match the serving \
                 model's {serving:08x}"
            ),
            SwapError::CanaryFailed(m) => write!(f, "canary batch failed: {m}"),
        }
    }
}

impl Error for SwapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SwapError::Load(e) => Some(e),
            _ => None,
        }
    }
}

/// Runs the canary: a small all-ones batch through a freshly compiled
/// plan of `model`, requiring finite logits and no panic.
fn run_canary(model: &PackedBnn, side: usize, fault: &FaultPlan) -> Result<(), String> {
    if fault.fail_canary() {
        return Err("injected canary failure".into());
    }
    let n = 2usize;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let plan = model.plan((side, side));
        let mut ws = Workspace::new();
        let input = vec![1.0f32; n * side * side];
        let mut logits = vec![0.0f32; n * 2];
        plan.run_into(&input, n, &mut ws, &mut logits);
        logits
    }));
    match outcome {
        Ok(logits) if logits.iter().all(|v| v.is_finite()) => Ok(()),
        Ok(logits) => Err(format!("non-finite canary logits {logits:?}")),
        Err(_) => Err("candidate model panicked on the canary batch".into()),
    }
}

/// Loads and validates `path`, then atomically publishes it to `slot`.
/// Returns the new generation and the displaced model (for the
/// rollback monitor).
///
/// # Errors
///
/// Returns [`SwapError`] without touching the serving model when any
/// validation rung fails.
pub fn validate_and_swap(
    slot: &ModelSlot,
    path: &Path,
    input_side: usize,
    fault: &FaultPlan,
) -> Result<(u64, Arc<PackedBnn>), SwapError> {
    let candidate = load_model(path).map_err(SwapError::Load)?;
    let (serving, _) = slot.current();
    let serving_fp = serving.arch_fingerprint();
    let candidate_fp = candidate.arch_fingerprint();
    if serving_fp != candidate_fp {
        return Err(SwapError::ArchMismatch {
            serving: serving_fp,
            candidate: candidate_fp,
        });
    }
    run_canary(&candidate, input_side, fault).map_err(SwapError::CanaryFailed)?;
    let (prev, generation) = slot.swap(Arc::new(candidate));
    Ok((generation, prev))
}

struct Watch {
    generation: u64,
    prev: Arc<PackedBnn>,
    batches: usize,
    failures: usize,
}

/// Post-swap rollback watcher (see module docs).  Workers report every
/// batch outcome through [`record`](SwapMonitor::record); the monitor
/// is inert unless a watch is active for the batch's generation.
pub struct SwapMonitor {
    window: usize,
    max_failures: usize,
    watch: Mutex<Option<Watch>>,
}

/// What [`record`](SwapMonitor::record) decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapVerdict {
    /// No watch active for this generation (or still inside the
    /// window): nothing happened.
    Watching,
    /// The generation survived its window; the retained model was
    /// released.
    Accepted,
    /// Failures crossed the threshold; the previous model was swapped
    /// back as the contained generation.
    RolledBack {
        /// The generation that was rolled back.
        failed: u64,
        /// The fresh generation now serving the restored model.
        restored_as: u64,
    },
}

impl SwapMonitor {
    /// A monitor accepting a new generation after `window` clean-enough
    /// batches and rolling back once `max_failures` of them fail.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < max_failures <= window`.
    pub fn new(window: usize, max_failures: usize) -> Self {
        assert!(
            max_failures > 0 && max_failures <= window,
            "need 0 < max_failures ({max_failures}) <= window ({window})"
        );
        SwapMonitor {
            window,
            max_failures,
            watch: Mutex::new(None),
        }
    }

    /// Starts watching `generation`, retaining `prev` for rollback.
    /// Replaces any watch still in progress (the older generation is
    /// already off the serving path, so its watch is moot).
    pub fn begin_watch(&self, generation: u64, prev: Arc<PackedBnn>) {
        let mut watch = self.watch.lock().unwrap_or_else(|p| p.into_inner());
        *watch = Some(Watch {
            generation,
            prev,
            batches: 0,
            failures: 0,
        });
    }

    /// `true` while a watch is active (diagnostic).
    pub fn is_watching(&self) -> bool {
        self.watch
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .is_some()
    }

    /// Reports one batch outcome for `generation`; performs the
    /// rollback swap on `slot` when the failure threshold is crossed.
    pub fn record(&self, slot: &ModelSlot, generation: u64, ok: bool) -> SwapVerdict {
        let mut guard = self.watch.lock().unwrap_or_else(|p| p.into_inner());
        let Some(watch) = guard.as_mut() else {
            return SwapVerdict::Watching;
        };
        if watch.generation != generation {
            return SwapVerdict::Watching;
        }
        watch.batches += 1;
        if !ok {
            watch.failures += 1;
        }
        if watch.failures >= self.max_failures {
            let watch = guard.take().expect("watch is present");
            // Rollback while holding the monitor lock: a concurrent
            // record() for the failed generation waits here and then
            // sees no watch, so only one rollback can fire.
            let (_, restored_as) = slot.swap(watch.prev);
            return SwapVerdict::RolledBack {
                failed: generation,
                restored_as,
            };
        }
        if watch.batches >= self.window {
            *guard = None;
            return SwapVerdict::Accepted;
        }
        SwapVerdict::Watching
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_bnn::{BnnResNet, NetConfig};
    use hotspot_core::persist::save_model;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn packed(seed: u64, side: usize) -> PackedBnn {
        let mut rng = StdRng::seed_from_u64(seed);
        PackedBnn::compile(&BnnResNet::new(&NetConfig::tiny(side), &mut rng))
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("serve_swap_{name}_{}", std::process::id()))
    }

    #[test]
    fn valid_artifact_swaps_and_returns_previous() {
        let slot = ModelSlot::new(packed(1, 16));
        let (before, _) = slot.current();
        let path = tmp("ok");
        save_model(&path, &packed(2, 16)).unwrap();
        let fault = FaultPlan::new();
        let (generation, prev) = validate_and_swap(&slot, &path, 16, &fault).unwrap();
        assert_eq!(generation, 2);
        assert!(Arc::ptr_eq(&prev, &before));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_artifact_is_rejected_and_service_model_unchanged() {
        let slot = ModelSlot::new(packed(3, 16));
        let path = tmp("corrupt");
        save_model(&path, &packed(4, 16)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let fault = FaultPlan::new();
        let err = validate_and_swap(&slot, &path, 16, &fault).unwrap_err();
        assert!(
            matches!(err, SwapError::Load(PersistError::BadChecksum)),
            "got {err:?}"
        );
        assert_eq!(slot.generation(), 1, "serving model untouched");
        let _ = std::fs::remove_file(&path);
    }

    fn packed_m2(seed: u64, side: usize) -> PackedBnn {
        let mut rng = StdRng::seed_from_u64(seed);
        PackedBnn::compile(&BnnResNet::new(
            &NetConfig::tiny(side).with_levels(2),
            &mut rng,
        ))
    }

    #[test]
    fn architecture_mismatch_is_rejected() {
        let slot = ModelSlot::new(packed(5, 16));
        let path = tmp("arch");
        // Same topology but M = 2 residual levels: a different
        // deployment contract, so the fingerprints must differ.
        save_model(&path, &packed_m2(6, 16)).unwrap();
        let fault = FaultPlan::new();
        let err = validate_and_swap(&slot, &path, 16, &fault).unwrap_err();
        assert!(matches!(err, SwapError::ArchMismatch { .. }), "got {err:?}");
        assert_eq!(slot.generation(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_canary_failure_rejects_the_swap() {
        let slot = ModelSlot::new(packed(7, 16));
        let path = tmp("canary");
        save_model(&path, &packed(8, 16)).unwrap();
        let fault = FaultPlan::new();
        fault.set_fail_canary(true);
        let err = validate_and_swap(&slot, &path, 16, &fault).unwrap_err();
        assert!(matches!(err, SwapError::CanaryFailed(_)), "got {err:?}");
        assert_eq!(slot.generation(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn monitor_rolls_back_a_failing_generation() {
        let slot = ModelSlot::new(packed(9, 16));
        let (original, _) = slot.current();
        let (prev, g2) = slot.swap(Arc::new(packed(10, 16)));
        let monitor = SwapMonitor::new(8, 2);
        monitor.begin_watch(g2, prev);
        assert_eq!(monitor.record(&slot, g2, false), SwapVerdict::Watching);
        let verdict = monitor.record(&slot, g2, false);
        assert_eq!(
            verdict,
            SwapVerdict::RolledBack {
                failed: 2,
                restored_as: 3
            }
        );
        let (now, g) = slot.current();
        assert_eq!(g, 3, "rollback is itself a generation bump");
        assert!(Arc::ptr_eq(&now, &original), "the old model is back");
        assert!(!monitor.is_watching());
    }

    #[test]
    fn monitor_accepts_a_generation_that_survives_its_window() {
        let slot = ModelSlot::new(packed(11, 16));
        let (prev, g2) = slot.swap(Arc::new(packed(12, 16)));
        let monitor = SwapMonitor::new(3, 2);
        monitor.begin_watch(g2, prev);
        assert_eq!(monitor.record(&slot, g2, true), SwapVerdict::Watching);
        assert_eq!(monitor.record(&slot, g2, false), SwapVerdict::Watching);
        assert_eq!(monitor.record(&slot, g2, true), SwapVerdict::Accepted);
        assert_eq!(slot.generation(), 2, "no rollback");
        assert!(!monitor.is_watching());
    }

    #[test]
    fn monitor_ignores_other_generations() {
        let slot = ModelSlot::new(packed(13, 16));
        let (prev, g2) = slot.swap(Arc::new(packed(14, 16)));
        let monitor = SwapMonitor::new(2, 1);
        monitor.begin_watch(g2, prev);
        // Stale reports from the pre-swap generation change nothing.
        assert_eq!(monitor.record(&slot, 1, false), SwapVerdict::Watching);
        assert!(monitor.is_watching());
        assert_eq!(slot.generation(), 2);
    }
}
