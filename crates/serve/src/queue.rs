//! A bounded MPMC queue with batch pop — the admission-control heart
//! of the server.
//!
//! Producers (connection readers) [`push`](BoundedQueue::push) one job
//! per request; a full queue rejects the push immediately, handing the
//! job back so the caller can answer with a typed `Overloaded`
//! response instead of buffering unboundedly.  Consumers (workers)
//! [`pop_batch`](BoundedQueue::pop_batch) up to `max` jobs at once:
//! the batch size adapts to load for free, because a worker takes
//! whatever has accumulated while it was busy (one job under light
//! load, a full batch under pressure).
//!
//! [`close`](BoundedQueue::close) starts shutdown: pushes fail, and
//! `pop_batch` keeps draining until the queue is empty before
//! returning `None`.  All lock acquisitions recover from poisoning —
//! the queue state is a plain `VecDeque`, valid at every instruction
//! boundary, so a panicking thread can never wedge admission control.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

struct State<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer job queue (see module docs).
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    /// Signalled on push and on close.
    available: Condvar,
    capacity: usize,
}

/// Why a [`push`](BoundedQueue::push) was refused; the job is handed
/// back untouched so the caller can answer it.
#[derive(Debug)]
pub enum PushRejected<T> {
    /// The queue already holds `capacity` jobs.
    Full(T),
    /// The queue is closed for shutdown.
    Closed(T),
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` jobs.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            state: Mutex::new(State {
                jobs: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueues a job, returning the queue depth after the push.
    ///
    /// # Errors
    ///
    /// Returns the job back as [`PushRejected`] when the queue is full
    /// or closed — never blocks, never buffers past the bound.
    pub fn push(&self, job: T) -> Result<usize, PushRejected<T>> {
        let mut st = self.lock();
        if st.closed {
            return Err(PushRejected::Closed(job));
        }
        if st.jobs.len() >= self.capacity {
            return Err(PushRejected::Full(job));
        }
        st.jobs.push_back(job);
        let depth = st.jobs.len();
        drop(st);
        self.available.notify_one();
        Ok(depth)
    }

    /// Blocks until at least one job is available, then takes up to
    /// `max` jobs.  Returns `None` once the queue is closed *and*
    /// drained — consumers exit only after finishing all admitted work.
    pub fn pop_batch(&self, max: usize) -> Option<Vec<T>> {
        let max = max.max(1);
        let mut st = self.lock();
        loop {
            if !st.jobs.is_empty() {
                let n = st.jobs.len().min(max);
                return Some(st.jobs.drain(..n).collect());
            }
            if st.closed {
                return None;
            }
            st = self
                .available
                .wait_timeout(st, Duration::from_millis(50))
                .unwrap_or_else(|p| p.into_inner())
                .0;
        }
    }

    /// Marks the queue closed: pushes fail from now on, consumers drain
    /// what remains.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// `true` once [`close`](BoundedQueue::close) has run.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.lock().jobs.len()
    }

    /// `true` when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Removes and returns every queued job (used by shutdown to flush
    /// leftovers with typed errors after the drain timeout).
    pub fn drain_remaining(&self) -> Vec<T> {
        self.lock().jobs.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_respects_the_bound_and_hands_the_job_back() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push(1).unwrap(), 1);
        assert_eq!(q.push(2).unwrap(), 2);
        match q.push(3) {
            Err(PushRejected::Full(j)) => assert_eq!(j, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_batch_takes_what_accumulated_up_to_max() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.pop_batch(3).unwrap(), vec![0, 1, 2]);
        assert_eq!(q.pop_batch(10).unwrap(), vec![3, 4]);
    }

    #[test]
    fn close_rejects_pushes_but_drains_consumers() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.close();
        assert!(matches!(q.push(2), Err(PushRejected::Closed(2))));
        assert_eq!(q.pop_batch(4).unwrap(), vec![1]);
        assert_eq!(q.pop_batch(4), None, "closed and drained");
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop_batch(4));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::new(16));
        let total = 400u64;
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..total / 4 {
                        let job = p * 1000 + i;
                        loop {
                            match q.push(job) {
                                Ok(_) => break,
                                Err(PushRejected::Full(_)) => std::thread::yield_now(),
                                Err(PushRejected::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(batch) = q.pop_batch(5) {
                        got.extend(batch);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), total as usize, "every job delivered once");
        all.dedup();
        assert_eq!(all.len(), total as usize, "no duplicates");
    }

    #[test]
    fn queue_recovers_from_a_poisoned_lock() {
        let q = Arc::new(BoundedQueue::new(4));
        q.push(1).unwrap();
        let q2 = q.clone();
        let _ = std::thread::spawn(move || {
            let _guard = q2.state.lock().unwrap();
            panic!("poison the queue lock");
        })
        .join();
        assert!(q.state.is_poisoned(), "setup: lock must be poisoned");
        q.push(2).unwrap();
        assert_eq!(q.pop_batch(4).unwrap(), vec![1, 2]);
    }
}
