//! The graceful-degradation ladder: cascade → triage-only and back,
//! with hysteresis.
//!
//! Under sustained overload the server trades a little accuracy for a
//! lot of throughput by skipping the cascade's full-M confirmation
//! stage and serving M = 1 triage decisions alone (the cheap pass is
//! exactly the classic single-level BNN, so quality degrades to the
//! paper's non-residual baseline rather than to garbage).
//!
//! The controller watches the queue depth each time a request is
//! admitted.  It enters degraded mode only after `enter_after`
//! *consecutive* observations at or above the high-water mark, and
//! leaves only after `exit_after` consecutive observations at or below
//! the low-water mark — two thresholds plus consecutive-count
//! hysteresis, so a queue hovering near the boundary cannot flap the
//! service between modes.

use hotspot_telemetry::{trace, Clock, MonotonicClock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// How many of the most recent mode transitions the controller
/// remembers for `/healthz` and post-mortem inspection.
const TRANSITION_LOG: usize = 64;

struct Runs {
    over: usize,
    under: usize,
}

/// One recorded mode change, stamped by the controller's [`Clock`] —
/// with a [`MockClock`](hotspot_telemetry::MockClock) these make
/// degradation decisions assertable at exact timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeTransition {
    /// Clock reading when the mode flipped.
    pub at_ns: u64,
    /// `true` = entered triage-only degradation, `false` = recovered.
    pub entered: bool,
    /// The queue depth observation that tipped the hysteresis.
    pub depth: usize,
}

/// Hysteresis state machine deciding when to serve triage-only (see
/// module docs).
pub struct DegradeController {
    high_water: usize,
    low_water: usize,
    enter_after: usize,
    exit_after: usize,
    runs: Mutex<Runs>,
    /// Read on the worker hot path without taking the mutex.
    degraded: AtomicBool,
    clock: Arc<dyn Clock>,
    /// Ring of the last [`TRANSITION_LOG`] mode changes, oldest first.
    transitions: Mutex<Vec<DegradeTransition>>,
}

impl DegradeController {
    /// A controller entering degradation after `enter_after`
    /// consecutive depths ≥ `high_water` and leaving after `exit_after`
    /// consecutive depths ≤ `low_water`.
    ///
    /// # Panics
    ///
    /// Panics unless `low_water < high_water` and both counts are
    /// positive.
    pub fn new(high_water: usize, low_water: usize, enter_after: usize, exit_after: usize) -> Self {
        Self::with_clock(
            high_water,
            low_water,
            enter_after,
            exit_after,
            Arc::new(MonotonicClock),
        )
    }

    /// As [`new`](Self::new), with an explicit clock stamping the
    /// transition log (tests inject a
    /// [`MockClock`](hotspot_telemetry::MockClock)).
    pub fn with_clock(
        high_water: usize,
        low_water: usize,
        enter_after: usize,
        exit_after: usize,
        clock: Arc<dyn Clock>,
    ) -> Self {
        assert!(
            low_water < high_water,
            "low water ({low_water}) must sit below high water ({high_water})"
        );
        assert!(
            enter_after > 0 && exit_after > 0,
            "hysteresis counts must be positive"
        );
        DegradeController {
            high_water,
            low_water,
            enter_after,
            exit_after,
            runs: Mutex::new(Runs { over: 0, under: 0 }),
            degraded: AtomicBool::new(false),
            clock,
            transitions: Mutex::new(Vec::with_capacity(TRANSITION_LOG)),
        }
    }

    /// Feeds one queue-depth observation; returns the mode in effect
    /// *after* the observation (`true` = triage-only).
    pub fn observe(&self, depth: usize) -> bool {
        let mut runs = self.runs.lock().unwrap_or_else(|p| p.into_inner());
        if depth >= self.high_water {
            runs.over += 1;
            runs.under = 0;
        } else if depth <= self.low_water {
            runs.under += 1;
            runs.over = 0;
        } else {
            // Between the marks: break both streaks (hysteresis band).
            runs.over = 0;
            runs.under = 0;
        }
        let was = self.degraded.load(Ordering::Relaxed);
        let now = if !was && runs.over >= self.enter_after {
            true
        } else if was && runs.under >= self.exit_after {
            false
        } else {
            was
        };
        if now != was {
            self.degraded.store(now, Ordering::Relaxed);
            let at_ns = self.clock.now_ns();
            {
                let mut log = self.transitions.lock().unwrap_or_else(|p| p.into_inner());
                if log.len() == TRANSITION_LOG {
                    log.remove(0);
                }
                log.push(DegradeTransition {
                    at_ns,
                    entered: now,
                    depth,
                });
            }
            trace::dispatch_event(
                if now { "degrade.enter" } else { "degrade.exit" },
                &[
                    ("depth", trace::Value::from(depth)),
                    ("at_ns", trace::Value::from(at_ns)),
                ],
            );
        }
        now
    }

    /// The most recent mode transitions (oldest first, bounded ring).
    pub fn transitions(&self) -> Vec<DegradeTransition> {
        self.transitions
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// The current mode (`true` = triage-only), lock-free.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// The high-water mark.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enters_only_after_sustained_overload() {
        let c = DegradeController::new(8, 2, 3, 2);
        assert!(!c.observe(9));
        assert!(!c.observe(10));
        assert!(!c.is_degraded(), "two observations are not enough");
        assert!(c.observe(8), "third consecutive high-water entry degrades");
        assert!(c.is_degraded());
    }

    #[test]
    fn a_single_dip_resets_the_entry_streak() {
        let c = DegradeController::new(8, 2, 3, 2);
        c.observe(9);
        c.observe(9);
        c.observe(1); // dip breaks the streak
        c.observe(9);
        c.observe(9);
        assert!(!c.is_degraded(), "streak restarted after the dip");
        assert!(c.observe(9));
    }

    #[test]
    fn exits_only_after_sustained_calm_below_low_water() {
        let c = DegradeController::new(8, 2, 1, 3);
        assert!(c.observe(8), "enter immediately (enter_after = 1)");
        // Mid-band depths keep it degraded and break the exit streak.
        assert!(c.observe(5));
        assert!(c.observe(2));
        assert!(c.observe(1));
        assert!(c.is_degraded(), "two calm observations are not enough");
        assert!(!c.observe(0), "third calm observation exits");
        assert!(!c.is_degraded());
    }

    #[test]
    fn mid_band_depths_never_change_mode() {
        let c = DegradeController::new(8, 2, 1, 1);
        for _ in 0..10 {
            assert!(!c.observe(5), "between the marks: stays healthy");
        }
        c.observe(8);
        for _ in 0..10 {
            assert!(c.observe(5), "between the marks: stays degraded");
        }
    }

    #[test]
    #[should_panic(expected = "below high water")]
    fn rejects_inverted_watermarks() {
        let _ = DegradeController::new(2, 8, 1, 1);
    }

    #[test]
    fn transitions_are_clock_stamped_and_ordered() {
        use hotspot_telemetry::MockClock;

        let clock = Arc::new(MockClock::new());
        let c = DegradeController::with_clock(8, 2, 2, 2, clock.clone());
        assert!(c.transitions().is_empty(), "no transitions yet");

        clock.advance(1_000);
        c.observe(9);
        assert!(c.transitions().is_empty(), "streak of one: no transition");
        clock.advance(1_000);
        c.observe(9); // enters at t = 2000
        clock.advance(1_000);
        c.observe(1);
        clock.advance(1_000);
        c.observe(1); // exits at t = 4000

        let log = c.transitions();
        assert_eq!(
            log,
            vec![
                DegradeTransition {
                    at_ns: 2_000,
                    entered: true,
                    depth: 9
                },
                DegradeTransition {
                    at_ns: 4_000,
                    entered: false,
                    depth: 1
                },
            ]
        );
    }

    #[test]
    fn transition_log_is_bounded() {
        let c = DegradeController::new(8, 2, 1, 1);
        for _ in 0..200 {
            c.observe(9);
            c.observe(0);
        }
        let log = c.transitions();
        assert_eq!(log.len(), TRANSITION_LOG);
        // Oldest entries were evicted: the ring ends on the latest exit.
        assert!(!log.last().unwrap().entered);
    }
}
