//! The serving core: listener, connection framing, batching workers,
//! admission control, degradation, hot-swap, and drain-on-shutdown.
//!
//! # Life of a request
//!
//! A connection reader decodes each frame and — for `Classify` —
//! validates the clip, stamps arrival time and deadline, and pushes a
//! job onto the bounded queue.  Admission is where backpressure lives:
//! a full queue rejects the push and the client gets an immediate
//! typed `Overloaded` response instead of unbounded buffering.  The
//! observed queue depth also feeds the [`DegradeController`], which
//! flips the service between full-cascade and triage-only modes with
//! hysteresis.
//!
//! Workers pop *adaptive batches*: up to `max_batch` jobs, but only
//! whatever has actually accumulated — one job under light load, a
//! full batch under pressure, with no artificial batching delay.
//! Deadlines are enforced at dispatch: jobs that expired while queued
//! are answered with `Deadline` without paying for inference.  The
//! batch runs under `catch_unwind`; if it panics (a poisoned request,
//! or an injected fault), each job is retried individually so only the
//! culpable request fails `Internal` while its batch-mates still get
//! real answers.  Batch outcomes per model generation feed the
//! [`SwapMonitor`], which rolls a bad hot-swap back automatically.
//!
//! Shutdown closes the queue (new pushes fail `Shutdown`), lets the
//! workers drain admitted jobs within the drain timeout, then flushes
//! any leftovers with typed `Shutdown` errors — every admitted request
//! is answered exactly once, even across a shutdown.

use crate::degrade::DegradeController;
use crate::fault::FaultPlan;
use crate::proto::{
    self, decode_request, encode_response, ErrorCode, Request, Response, ScanHit, MAX_FRAME_LEN,
};
use crate::queue::{BoundedQueue, PushRejected};
use crate::swap::{validate_and_swap, SwapMonitor, SwapVerdict};
use hotspot_bnn::{ModelSlot, PackedBnn, ScanConfig, ScanReport, Scanner};
use hotspot_geometry::BitImage;
use hotspot_telemetry::{
    depth_buckets, next_trace_id, serving_latency_ns_buckets, trace, Clock, Counter, DriftConfig,
    DriftMonitor, FlightRecorder, Gauge, Histogram, MetricsRegistry, MonotonicClock, Outcome,
    RequestRecord, Stage, WindowedHistogram,
};
use hotspot_tensor::{Workspace, WorkspacePool};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Poll interval for reader threads and the drain loop; bounds how
/// long shutdown waits on an idle connection.
const POLL: Duration = Duration::from_millis(50);

/// Serving configuration.  [`ServeConfig::new`] gives production-ish
/// defaults; tests shrink the knobs to force each failure mode
/// deterministically.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Inference worker threads.
    pub workers: usize,
    /// Upper bound on jobs per batch (the lower bound is whatever has
    /// accumulated — batching adapts to load).
    pub max_batch: usize,
    /// Bounded queue capacity; pushes beyond it are shed `Overloaded`.
    pub queue_capacity: usize,
    /// Queue depth at which the degradation ladder starts counting
    /// toward triage-only mode.
    pub high_water: usize,
    /// Queue depth at or below which the ladder counts toward
    /// recovery.
    pub low_water: usize,
    /// Consecutive high-water observations before degrading.
    pub degrade_enter_after: usize,
    /// Consecutive low-water observations before recovering.
    pub degrade_exit_after: usize,
    /// Deadline applied when a request says `deadline_ms == 0`.
    pub default_deadline: Duration,
    /// How long shutdown waits for workers to drain admitted jobs
    /// before flushing the rest with `Shutdown` errors.
    pub drain_timeout: Duration,
    /// Cascade escalation threshold: triage margins inside
    /// `(-threshold, threshold)` are confirmed by the full M-level
    /// pass (ignored while degraded or for M = 1 models).
    pub cascade_threshold: f32,
    /// Clip side length the model expects; other sizes are rejected
    /// `BadRequest`.
    pub input_size: usize,
    /// Per-frame payload ceiling.
    pub max_frame_len: usize,
    /// Post-swap watch window in batches.
    pub swap_window: usize,
    /// Failed batches within the window that trigger rollback.
    pub swap_max_failures: usize,
    /// Flight-recorder capacity: how many completed request records the
    /// ring retains for `GET /debug/requests` and trace-id lookup.
    pub flight_capacity: usize,
    /// Rolling-window metrics: number of time slices and their
    /// duration.  Windowed p50/p95/p99 latency and request rate cover
    /// the last `window_slices × window_slice_ns` nanoseconds.
    pub window_slices: usize,
    pub window_slice_ns: u64,
    /// Drift-monitor tuning (baseline size, window, thresholds).
    pub drift: DriftConfig,
    /// When `true`, workers run the triage pass profiled and export
    /// per-layer timings (`serve_layer_ns_total{slot=...}`) on the
    /// scrape.  Off by default: per-layer clocks cost a few percent of
    /// throughput.
    pub profile_layers: bool,
}

impl ServeConfig {
    /// Defaults for a model taking `input_size`-pixel clips.
    pub fn new(input_size: usize) -> Self {
        ServeConfig {
            workers: 2,
            max_batch: 16,
            queue_capacity: 64,
            high_water: 48,
            low_water: 16,
            degrade_enter_after: 3,
            degrade_exit_after: 3,
            default_deadline: Duration::from_secs(1),
            drain_timeout: Duration::from_secs(2),
            cascade_threshold: 1.0,
            input_size,
            max_frame_len: MAX_FRAME_LEN,
            swap_window: 16,
            swap_max_failures: 3,
            flight_capacity: 1024,
            window_slices: 6,
            window_slice_ns: 10_000_000_000, // 1-minute window
            drift: DriftConfig::default(),
            profile_layers: false,
        }
    }

    fn validate(&self) -> Result<(), String> {
        if self.workers == 0 || self.max_batch == 0 || self.queue_capacity == 0 {
            return Err("workers, max_batch and queue_capacity must be positive".into());
        }
        if !(self.low_water < self.high_water && self.high_water <= self.queue_capacity) {
            return Err(format!(
                "need low_water < high_water <= queue_capacity, got {} / {} / {}",
                self.low_water, self.high_water, self.queue_capacity
            ));
        }
        if self.input_size == 0 {
            return Err("input_size must be positive".into());
        }
        if !(self.cascade_threshold.is_finite() && self.cascade_threshold >= 0.0) {
            return Err(format!(
                "cascade_threshold must be finite and non-negative, got {}",
                self.cascade_threshold
            ));
        }
        if self.swap_max_failures == 0 || self.swap_max_failures > self.swap_window {
            return Err("need 0 < swap_max_failures <= swap_window".into());
        }
        if self.flight_capacity == 0 {
            return Err("flight_capacity must be positive".into());
        }
        if self.window_slices == 0 || self.window_slice_ns == 0 {
            return Err("window_slices and window_slice_ns must be positive".into());
        }
        Ok(())
    }
}

/// What an admitted job asks the workers to compute.
enum JobPayload {
    /// Classify one pre-converted ±1 clip.
    Classify {
        /// The clip as signed floats, ready for the plan.
        input: Vec<f32>,
    },
    /// Scan a full-chip raster with the streaming scanner.
    Scan {
        /// The chip bitmap.
        image: BitImage,
        /// Window grid stride in pixels.
        stride: u32,
    },
}

/// One admitted job (classification or full-chip scan).
struct Job {
    id: u64,
    payload: JobPayload,
    deadline: Instant,
    enqueued: Instant,
    reply: mpsc::Sender<Vec<u8>>,
    /// The flight-recorder record under construction: carries the
    /// trace id and accumulates per-stage durations as the job moves
    /// admission → queue → batch → dispatch → inference → reply.
    rec: RequestRecord,
    /// Clock reading at enqueue, for the queue-wait stage.
    queued_ns: u64,
}

/// Pre-registered metric handles (one registry lookup each, at
/// startup).
struct ServeMetrics {
    requests: Counter,
    responses: Counter,
    deadline_miss: Counter,
    shed: Counter,
    panics: Counter,
    swaps: Counter,
    rollbacks: Counter,
    bad_frames: Counter,
    degraded: Gauge,
    queue_depth: Gauge,
    latency_ns: Histogram,
    batch_fill: Histogram,
    queue_depth_sampled: Histogram,
    /// Rolling-window views, refreshed at scrape time from the
    /// windowed latency histogram.
    window_p50: Gauge,
    window_p95: Gauge,
    window_p99: Gauge,
    window_rate: Gauge,
}

impl ServeMetrics {
    fn new(registry: &MetricsRegistry, config: &ServeConfig) -> Self {
        ServeMetrics {
            requests: registry.counter("serve_requests_total"),
            responses: registry.counter("serve_responses_total"),
            deadline_miss: registry.counter("serve_deadline_miss_total"),
            shed: registry.counter("serve_shed_total"),
            panics: registry.counter("serve_worker_panics_total"),
            swaps: registry.counter("serve_swaps_total"),
            rollbacks: registry.counter("serve_rollbacks_total"),
            bad_frames: registry.counter("serve_bad_frames_total"),
            degraded: registry.gauge("serve_degraded"),
            queue_depth: registry.gauge("serve_queue_depth"),
            latency_ns: registry.histogram("serve_latency_ns", &serving_latency_ns_buckets()),
            batch_fill: registry.histogram("serve_batch_fill", &depth_buckets(config.max_batch)),
            queue_depth_sampled: registry.histogram(
                "serve_queue_depth_sampled",
                &depth_buckets(config.queue_capacity),
            ),
            window_p50: registry.gauge("serve_latency_window_p50_ns"),
            window_p95: registry.gauge("serve_latency_window_p95_ns"),
            window_p99: registry.gauge("serve_latency_window_p99_ns"),
            window_rate: registry.gauge("serve_request_rate_per_sec"),
        }
    }
}

struct Shared {
    config: ServeConfig,
    queue: BoundedQueue<Job>,
    slot: ModelSlot,
    fault: Arc<FaultPlan>,
    registry: Arc<MetricsRegistry>,
    degrade: DegradeController,
    monitor: SwapMonitor,
    ws_pool: WorkspacePool,
    shutdown: AtomicBool,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    m: ServeMetrics,
    /// One clock for every request-scoped timestamp, so stage
    /// durations across threads share a timebase.
    clock: Arc<dyn Clock>,
    /// Completed-request ring for `GET /debug/requests` and trace-id
    /// lookup.
    flight: FlightRecorder,
    /// Rolling-window latency distribution (last N seconds), the
    /// source of the `serve_latency_window_*` gauges.
    latency_window: WindowedHistogram,
    /// Prediction-margin / escalation-rate drift vs the baseline
    /// captured after each model load or swap.
    drift: DriftMonitor,
}

/// What shutdown observed while draining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Jobs still queued when the drain timeout expired; each was
    /// answered with a typed `Shutdown` error.
    pub flushed: usize,
}

/// A running hotspot-serving instance (see module docs).  Construct
/// with [`Server::start`], stop with [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds a loopback listener on an OS-assigned port and starts
    /// serving `model`.
    ///
    /// # Errors
    ///
    /// Returns `io::Error` when the socket cannot be bound or the
    /// configuration is invalid (surfaced as `InvalidInput`).
    pub fn start(config: ServeConfig, model: PackedBnn) -> io::Result<Server> {
        config
            .validate()
            .map_err(|m| io::Error::new(io::ErrorKind::InvalidInput, m))?;
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let registry = Arc::new(MetricsRegistry::new());
        let m = ServeMetrics::new(&registry, &config);
        let clock: Arc<dyn Clock> = Arc::new(MonotonicClock);
        let drift = DriftMonitor::with_clock(config.drift.clone(), clock.clone());
        drift.bind_gauge(registry.gauge("serve_drift_divergence"));
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            slot: ModelSlot::new(model),
            fault: Arc::new(FaultPlan::new()),
            registry,
            degrade: DegradeController::new(
                config.high_water,
                config.low_water,
                config.degrade_enter_after,
                config.degrade_exit_after,
            ),
            monitor: SwapMonitor::new(config.swap_window, config.swap_max_failures),
            // Only the workers check workspaces out, so the bound can
            // never block; it exists to catch accounting bugs loudly.
            ws_pool: WorkspacePool::bounded(config.workers),
            shutdown: AtomicBool::new(false),
            conn_threads: Mutex::new(Vec::new()),
            m,
            flight: FlightRecorder::new(config.flight_capacity),
            latency_window: WindowedHistogram::with_clock(
                config.window_slices,
                config.window_slice_ns,
                &serving_latency_ns_buckets(),
                clock.clone(),
            ),
            drift,
            clock,
            config,
        });
        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = shared.clone();
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let accept_shared = shared.clone();
        let listener_thread = thread::Builder::new()
            .name("serve-listener".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn listener");
        Ok(Server {
            addr,
            shared,
            listener: Some(listener_thread),
            workers,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The fault-injection plan (armed by tests; inert by default).
    pub fn fault(&self) -> Arc<FaultPlan> {
        self.shared.fault.clone()
    }

    /// The server's metrics registry.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        self.shared.registry.clone()
    }

    /// The model generation currently serving.
    pub fn generation(&self) -> u64 {
        self.shared.slot.generation()
    }

    /// `true` while the service is in triage-only degradation.
    pub fn is_degraded(&self) -> bool {
        self.shared.degrade.is_degraded()
    }

    /// The flight recorder holding completed request records (the
    /// in-process view of `GET /debug/requests`).
    pub fn flight(&self) -> &FlightRecorder {
        &self.shared.flight
    }

    /// The prediction-drift monitor for the serving model.
    pub fn drift(&self) -> &DriftMonitor {
        &self.shared.drift
    }

    /// Recent degradation-mode transitions (clock-stamped).
    pub fn degrade_transitions(&self) -> Vec<crate::degrade::DegradeTransition> {
        self.shared.degrade.transitions()
    }

    /// Stops the server: closes admission, drains in-flight jobs for
    /// up to the configured drain timeout, flushes anything left with
    /// typed `Shutdown` errors, and joins every thread.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        let deadline = Instant::now() + self.shared.config.drain_timeout;
        while !self.shared.queue.is_empty() && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        let leftovers = self.shared.queue.drain_remaining();
        let flushed = leftovers.len();
        // Consume each job as it is flushed: a retained `Job` would keep
        // its reply sender alive past the joins below, and a connection
        // writer thread only exits once every sender has dropped.
        for job in leftovers {
            let resp = Response::Error {
                id: job.id,
                code: ErrorCode::Shutdown,
                msg: "server is shutting down".into(),
            };
            finish(&self.shared, job, resp, Outcome::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // A throwaway connection unblocks the accept loop so it can
        // observe the shutdown flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        let conns = {
            let mut guard = self
                .shared
                .conn_threads
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            std::mem::take(&mut *guard)
        };
        for c in conns {
            let _ = c.join();
        }
        ShutdownReport { flushed }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let conn_shared = shared.clone();
                let handle = thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || handle_connection(stream, &conn_shared))
                    .expect("spawn connection handler");
                shared
                    .conn_threads
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(handle);
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

enum ReadOutcome {
    Full,
    /// Peer closed (possibly mid-frame — a truncated frame simply ends
    /// the connection; no request was formed, so nothing is owed).
    Eof,
    Shutdown,
}

/// Fills `buf` from the stream, tolerating read timeouts (used to poll
/// the shutdown flag) and partial reads.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], shutdown: &AtomicBool) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return ReadOutcome::Eof,
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return ReadOutcome::Shutdown;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Eof,
        }
    }
    ReadOutcome::Full
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    // Writer thread: responses (possibly produced by several workers)
    // funnel through one channel so frames never interleave.  It exits
    // when every sender — the reader below plus any in-flight jobs —
    // has dropped.
    let (tx, rx) = mpsc::channel::<Vec<u8>>();
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let writer = thread::Builder::new()
        .name("serve-conn-writer".into())
        .spawn(move || {
            while let Ok(frame) = rx.recv() {
                if proto::write_frame(&mut write_half, &frame).is_err() {
                    // Client gone; keep draining so senders never block.
                }
            }
        })
        .expect("spawn connection writer");
    shared
        .conn_threads
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push(writer);

    loop {
        let mut prefix = [0u8; 4];
        match read_full(&mut stream, &mut prefix, &shared.shutdown) {
            ReadOutcome::Full => {}
            ReadOutcome::Eof | ReadOutcome::Shutdown => break,
        }
        if &prefix == b"GET " {
            serve_http(&mut stream, shared);
            break;
        }
        let len = u32::from_le_bytes(prefix) as usize;
        if len > shared.config.max_frame_len {
            shared.m.bad_frames.inc();
            send_error(
                &tx,
                0,
                ErrorCode::CorruptFrame,
                format!(
                    "frame length {len} exceeds the {}-byte limit",
                    shared.config.max_frame_len
                ),
            );
            break;
        }
        let mut payload = vec![0u8; len];
        match read_full(&mut stream, &mut payload, &shared.shutdown) {
            ReadOutcome::Full => {}
            ReadOutcome::Eof | ReadOutcome::Shutdown => break,
        }
        match decode_request(&payload) {
            Ok(req) => {
                if !dispatch_request(req, &tx, shared) {
                    break;
                }
            }
            Err(e) => {
                shared.m.bad_frames.inc();
                send_error(&tx, 0, ErrorCode::CorruptFrame, e.0);
                break;
            }
        }
    }
    // Dropping `tx` lets the writer exit once in-flight jobs finish.
}

/// Handles one decoded request; returns `false` when the connection
/// should close.
fn dispatch_request(req: Request, tx: &mpsc::Sender<Vec<u8>>, shared: &Arc<Shared>) -> bool {
    match req {
        Request::Ping { id } => {
            let _ = tx.send(encode_response(&Response::Pong { id }));
        }
        Request::Metrics => {
            let text = metrics_text(shared);
            let _ = tx.send(encode_response(&Response::MetricsText(text)));
        }
        Request::Stats { id } => {
            let _ = tx.send(encode_response(&Response::Stats {
                id,
                generation: shared.slot.generation(),
                degraded: shared.degrade.is_degraded(),
                queue_depth: shared.queue.len() as u64,
            }));
        }
        Request::SwapModel { id, path } => handle_swap(id, path, tx, shared),
        Request::Classify {
            id,
            deadline_ms,
            width,
            height,
            words,
            trace_id,
        } => return admit_classify(id, deadline_ms, width, height, words, trace_id, tx, shared),
        Request::Scan {
            id,
            deadline_ms,
            stride,
            width,
            height,
            words,
            trace_id,
        } => {
            return admit_scan(
                id,
                deadline_ms,
                stride,
                width,
                height,
                words,
                trace_id,
                tx,
                shared,
            )
        }
    }
    true
}

fn handle_swap(id: u64, path: String, tx: &mpsc::Sender<Vec<u8>>, shared: &Arc<Shared>) {
    if shared.shutdown.load(Ordering::SeqCst) {
        send_error(
            tx,
            id,
            ErrorCode::Shutdown,
            "server is shutting down".into(),
        );
        return;
    }
    let path = PathBuf::from(path);
    match validate_and_swap(&shared.slot, &path, shared.config.input_size, &shared.fault) {
        Ok((generation, prev)) => {
            shared.monitor.begin_watch(generation, prev);
            shared.m.swaps.inc();
            // The published model defines a new "normal": the drift
            // monitor recollects its baseline against it.
            shared.drift.rebaseline();
            trace::dispatch_event(
                "serve.swap",
                &[("generation", trace::Value::from(generation))],
            );
            let _ = tx.send(encode_response(&Response::SwapOk { id, generation }));
        }
        Err(e) => send_error(tx, id, ErrorCode::SwapFailed, e.to_string()),
    }
}

/// Validates and enqueues a classify request.  Always answers the
/// request (immediately on rejection, via a worker on admission).
///
/// Tracing starts here: the client's trace id is honored when present,
/// otherwise one is minted, and the admission stage (validate + raster
/// conversion + enqueue) is the record's first timing.
#[allow(clippy::too_many_arguments)]
fn admit_classify(
    id: u64,
    deadline_ms: u32,
    width: u32,
    height: u32,
    words: Vec<u64>,
    trace_id: u64,
    tx: &mpsc::Sender<Vec<u8>>,
    shared: &Arc<Shared>,
) -> bool {
    let t_admit = shared.clock.now_ns();
    shared.m.requests.inc();
    let side = shared.config.input_size;
    if width as usize != side || height as usize != side {
        send_error(
            tx,
            id,
            ErrorCode::BadRequest,
            format!("expected a {side}x{side} clip, got {width}x{height}"),
        );
        return true;
    }
    let image = match BitImage::from_words(width as usize, height as usize, words) {
        Ok(img) => img,
        Err(e) => {
            send_error(tx, id, ErrorCode::BadRequest, e);
            return true;
        }
    };
    let payload = JobPayload::Classify {
        input: image.to_signed_f32(),
    };
    enqueue_job(id, deadline_ms, trace_id, payload, t_admit, tx, shared);
    true
}

/// Validates and enqueues a full-chip scan request.  Scans share the
/// classify queue, deadline enforcement, and shedding: one chip is one
/// job.
#[allow(clippy::too_many_arguments)]
fn admit_scan(
    id: u64,
    deadline_ms: u32,
    stride: u32,
    width: u32,
    height: u32,
    words: Vec<u64>,
    trace_id: u64,
    tx: &mpsc::Sender<Vec<u8>>,
    shared: &Arc<Shared>,
) -> bool {
    let t_admit = shared.clock.now_ns();
    shared.m.requests.inc();
    if stride == 0 {
        send_error(
            tx,
            id,
            ErrorCode::BadRequest,
            "stride must be positive".into(),
        );
        return true;
    }
    if width == 0 || height == 0 {
        send_error(
            tx,
            id,
            ErrorCode::BadRequest,
            format!("chip must be non-empty, got {width}x{height}"),
        );
        return true;
    }
    let image = match BitImage::from_words(width as usize, height as usize, words) {
        Ok(img) => img,
        Err(e) => {
            send_error(tx, id, ErrorCode::BadRequest, e);
            return true;
        }
    };
    enqueue_job(
        id,
        deadline_ms,
        trace_id,
        JobPayload::Scan { image, stride },
        t_admit,
        tx,
        shared,
    );
    true
}

/// Shared admission tail: stamps deadline and trace, enqueues, and
/// answers immediately on shed/shutdown.
fn enqueue_job(
    id: u64,
    deadline_ms: u32,
    trace_id: u64,
    payload: JobPayload,
    t_admit: u64,
    tx: &mpsc::Sender<Vec<u8>>,
    shared: &Arc<Shared>,
) {
    let now = Instant::now();
    let budget = if deadline_ms == 0 {
        shared.config.default_deadline
    } else {
        Duration::from_millis(u64::from(deadline_ms))
    };
    let trace_id = if trace_id != 0 {
        trace_id
    } else {
        next_trace_id()
    };
    let mut rec = RequestRecord::new(trace_id, id, t_admit);
    let queued_ns = shared.clock.now_ns();
    rec.mark(Stage::Admission, queued_ns.saturating_sub(t_admit));
    let job = Job {
        id,
        payload,
        deadline: now + budget,
        enqueued: now,
        reply: tx.clone(),
        rec,
        queued_ns,
    };
    match shared.queue.push(job) {
        Ok(depth) => {
            let degraded = shared.degrade.observe(depth);
            shared.m.degraded.set(if degraded { 1.0 } else { 0.0 });
            shared.m.queue_depth.set(depth as f64);
            shared.m.queue_depth_sampled.observe(depth as f64);
        }
        Err(PushRejected::Full(job)) => {
            shared.m.shed.inc();
            // A full queue is also the strongest overload signal the
            // ladder can see.
            let degraded = shared.degrade.observe(shared.queue.capacity());
            shared.m.degraded.set(if degraded { 1.0 } else { 0.0 });
            let resp = Response::Error {
                id: job.id,
                code: ErrorCode::Overloaded,
                msg: "queue is at capacity".into(),
            };
            finish(shared, job, resp, Outcome::Shed);
        }
        Err(PushRejected::Closed(job)) => {
            let resp = Response::Error {
                id: job.id,
                code: ErrorCode::Shutdown,
                msg: "server is shutting down".into(),
            };
            finish(shared, job, resp, Outcome::Shutdown);
        }
    }
}

/// Ceiling on HTTP request bytes read after the sniffed `GET ` prefix
/// (path + headers); anything longer is answered 404 and dropped.
const MAX_HTTP_REQUEST: usize = 8 * 1024;

/// Reads the rest of an HTTP request (we already consumed `"GET "`)
/// and returns the request path, or `None` if the request never
/// completes within bounds.  The stream has a read timeout, so the
/// loop also notices server shutdown.
fn read_http_path(stream: &mut TcpStream, shutdown: &AtomicBool) -> Option<String> {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        if buf.len() > MAX_HTTP_REQUEST {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // EOF: parse whatever arrived
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return None;
                }
                // A bare `GET /path HTTP/1.0\r\n` with no trailing
                // blank line is still parseable once the line is in.
                if buf.windows(2).any(|w| w == b"\r\n") {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
    // `buf` starts at the path: the `GET ` prefix was the sniff.
    let end = buf.iter().position(|&b| b == b' ' || b == b'\r')?;
    String::from_utf8(buf[..end].to_vec()).ok()
}

/// Builds a complete `HTTP/1.1` response with correct framing headers.
fn http_response(status: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// Refreshes the rolling-window gauges and renders the Prometheus
/// text.  Shared by the HTTP scrape and the binary `Metrics` request,
/// so both views agree.
fn metrics_text(shared: &Shared) -> String {
    let snap = shared.latency_window.snapshot();
    shared.m.window_p50.set(snap.quantile(0.50).unwrap_or(0.0));
    shared.m.window_p95.set(snap.quantile(0.95).unwrap_or(0.0));
    shared.m.window_p99.set(snap.quantile(0.99).unwrap_or(0.0));
    shared
        .m
        .window_rate
        .set(shared.latency_window.rate_per_sec());
    // Keep the drift gauge fresh even when traffic has stopped.
    shared.drift.compare();
    shared.registry.to_prometheus()
}

/// Answers one HTTP request on the sniffed connection, then closes it:
/// `/metrics` (Prometheus text with windowed quantiles), `/healthz`
/// (liveness JSON incl. queue depth and degrade state),
/// `/debug/requests` (the flight recorder as JSONL), 404 otherwise.
fn serve_http(stream: &mut TcpStream, shared: &Arc<Shared>) {
    let path = match read_http_path(stream, &shared.shutdown) {
        Some(p) => p,
        None => return,
    };
    let response = match path.split('?').next().unwrap_or("") {
        "/metrics" => http_response("200 OK", "text/plain; version=0.0.4", &metrics_text(shared)),
        "/healthz" => {
            let body = format!(
                "{{\"status\":\"ok\",\"queue_depth\":{},\"degraded\":{},\
                 \"generation\":{},\"flight_recorded\":{}}}\n",
                shared.queue.len(),
                shared.degrade.is_degraded(),
                shared.slot.generation(),
                shared.flight.total_recorded(),
            );
            http_response("200 OK", "application/json", &body)
        }
        "/debug/requests" => {
            http_response("200 OK", "application/x-ndjson", &shared.flight.to_jsonl())
        }
        _ => http_response("404 Not Found", "text/plain", "not found\n"),
    };
    let _ = stream.write_all(response.as_bytes());
}

fn send_error(tx: &mpsc::Sender<Vec<u8>>, id: u64, code: ErrorCode, msg: String) {
    let _ = tx.send(encode_response(&Response::Error { id, code, msg }));
}

/// Sends `resp` for `job`, records response metrics, closes out the
/// job's flight record (reply stage + outcome), and files it in the
/// recorder.  Consumes the job: a request is finished exactly once.
fn finish(shared: &Shared, mut job: Job, resp: Response, outcome: Outcome) {
    let t_reply = shared.clock.now_ns();
    let _ = job.reply.send(encode_response(&resp));
    shared.m.responses.inc();
    let latency = job.enqueued.elapsed().as_nanos() as f64;
    shared.m.latency_ns.observe(latency);
    shared.latency_window.observe(latency);
    job.rec
        .mark(Stage::Reply, shared.clock.now_ns().saturating_sub(t_reply));
    job.rec.outcome = outcome;
    shared.flight.record(job.rec);
}

/// One clip's classification outcome.
struct ClipResult {
    hotspot: bool,
    margin: f32,
    escalated: bool,
}

/// Signed nanoseconds from `now` to `deadline` (negative = missed).
fn slack_ns(deadline: Instant, now: Instant) -> i64 {
    if deadline >= now {
        deadline.duration_since(now).as_nanos() as i64
    } else {
        -(now.duration_since(deadline).as_nanos() as i64)
    }
}

/// Completes a successfully classified job: stamps the cascade
/// outcome on its flight record, feeds the drift monitor, and replies.
fn finish_classified(shared: &Shared, mut job: Job, r: &ClipResult, degraded: bool, levels: u8) {
    job.rec.escalated = r.escalated;
    job.rec.degraded = degraded;
    // M-level actually spent on this clip: the full ladder when the
    // cascade escalated it, the M = 1 triage pass otherwise.
    job.rec.m_level = if r.escalated { levels } else { 1 };
    shared.drift.observe(f64::from(r.margin), r.escalated);
    let resp = Response::Classify {
        id: job.id,
        hotspot: r.hotspot,
        margin: r.margin,
        degraded,
        escalated: r.escalated,
        trace_id: job.rec.trace_id,
    };
    finish(shared, job, resp, Outcome::Ok);
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(batch) = shared.queue.pop_batch(shared.config.max_batch) {
        let t_pop = shared.clock.now_ns();
        shared.m.queue_depth.set(shared.queue.len() as f64);
        if let Some(ms) = shared.fault.slow_worker_ms() {
            thread::sleep(Duration::from_millis(ms));
        }
        // Deadline enforcement happens at dispatch: a job that expired
        // while queued is answered without paying for inference.
        let now = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        let mut expired = Vec::new();
        for mut job in batch {
            job.rec
                .mark(Stage::QueueWait, t_pop.saturating_sub(job.queued_ns));
            job.rec.deadline_slack_ns = slack_ns(job.deadline, now);
            if job.deadline <= now {
                expired.push(job);
            } else {
                live.push(job);
            }
        }
        let t_formed = shared.clock.now_ns();
        let batch_ns = t_formed.saturating_sub(t_pop);
        for mut job in expired {
            shared.m.deadline_miss.inc();
            // The timeline is complete and truthful: the job reached
            // batch formation, and zero nanoseconds went to dispatch
            // or inference.
            job.rec.mark(Stage::Batch, batch_ns);
            job.rec.mark(Stage::Dispatch, 0);
            job.rec.mark(Stage::Inference, 0);
            job.rec.degraded = shared.degrade.is_degraded();
            let resp = Response::Error {
                id: job.id,
                code: ErrorCode::Deadline,
                msg: "deadline expired while queued".into(),
            };
            finish(shared, job, resp, Outcome::Deadline);
        }
        if live.is_empty() {
            continue;
        }
        let batch_size = live.len() as u32;
        shared.m.batch_fill.observe(f64::from(batch_size));
        let degraded = shared.degrade.is_degraded();
        let (model, generation) = shared.slot.current();
        let levels = model.levels().max(1) as u8;
        let t_dispatched = shared.clock.now_ns();
        for job in &mut live {
            job.rec.mark(Stage::Batch, batch_ns);
            job.rec
                .mark(Stage::Dispatch, t_dispatched.saturating_sub(t_formed));
            job.rec.batch_size = batch_size;
        }
        // Clips batch together; each scan is its own unit of isolation.
        let (classify, scans): (Vec<Job>, Vec<Job>) = live
            .into_iter()
            .partition(|j| matches!(j.payload, JobPayload::Classify { .. }));
        if !classify.is_empty() {
            match run_batch(shared, &model, generation, &classify, degraded) {
                Ok(results) => {
                    let infer_ns = shared.clock.now_ns().saturating_sub(t_dispatched);
                    handle_verdict(
                        shared,
                        shared.monitor.record(&shared.slot, generation, true),
                    );
                    for (mut job, r) in classify.into_iter().zip(results) {
                        job.rec.mark(Stage::Inference, infer_ns);
                        finish_classified(shared, job, &r, degraded, levels);
                    }
                }
                Err(()) => {
                    shared.m.panics.inc();
                    handle_verdict(
                        shared,
                        shared.monitor.record(&shared.slot, generation, false),
                    );
                    // Panic isolation: retry each job alone (against the
                    // *current* model — a rollback may just have happened)
                    // so only the culpable request fails.
                    for mut job in classify {
                        let (model, generation) = shared.slot.current();
                        let levels = model.levels().max(1) as u8;
                        match run_batch(
                            shared,
                            &model,
                            generation,
                            std::slice::from_ref(&job),
                            degraded,
                        ) {
                            Ok(mut results) => {
                                let r = results.pop().expect("one result for one job");
                                // Inference cost includes the failed batch
                                // attempt this clip was part of.
                                job.rec.mark(
                                    Stage::Inference,
                                    shared.clock.now_ns().saturating_sub(t_dispatched),
                                );
                                finish_classified(shared, job, &r, degraded, levels);
                            }
                            Err(()) => {
                                shared.m.panics.inc();
                                handle_verdict(
                                    shared,
                                    shared.monitor.record(&shared.slot, generation, false),
                                );
                                job.rec.mark(
                                    Stage::Inference,
                                    shared.clock.now_ns().saturating_sub(t_dispatched),
                                );
                                job.rec.degraded = degraded;
                                let resp = Response::Error {
                                    id: job.id,
                                    code: ErrorCode::Internal,
                                    msg: "worker panicked while classifying this clip".into(),
                                };
                                finish(shared, job, resp, Outcome::Internal);
                            }
                        }
                    }
                }
            }
        }
        for mut job in scans {
            match run_scan(shared, &model, generation, &job, degraded) {
                Ok(report) => {
                    handle_verdict(
                        shared,
                        shared.monitor.record(&shared.slot, generation, true),
                    );
                    job.rec.mark(
                        Stage::Inference,
                        shared.clock.now_ns().saturating_sub(t_dispatched),
                    );
                    finish_scanned(shared, job, &report, degraded, levels);
                }
                Err(()) => {
                    shared.m.panics.inc();
                    handle_verdict(
                        shared,
                        shared.monitor.record(&shared.slot, generation, false),
                    );
                    // One retry against the current slot (a rollback may
                    // just have replaced a poisoned generation).
                    let (model, generation) = shared.slot.current();
                    let levels = model.levels().max(1) as u8;
                    match run_scan(shared, &model, generation, &job, degraded) {
                        Ok(report) => {
                            job.rec.mark(
                                Stage::Inference,
                                shared.clock.now_ns().saturating_sub(t_dispatched),
                            );
                            finish_scanned(shared, job, &report, degraded, levels);
                        }
                        Err(()) => {
                            shared.m.panics.inc();
                            handle_verdict(
                                shared,
                                shared.monitor.record(&shared.slot, generation, false),
                            );
                            job.rec.mark(
                                Stage::Inference,
                                shared.clock.now_ns().saturating_sub(t_dispatched),
                            );
                            job.rec.degraded = degraded;
                            let resp = Response::Error {
                                id: job.id,
                                code: ErrorCode::Internal,
                                msg: "worker panicked while scanning this chip".into(),
                            };
                            finish(shared, job, resp, Outcome::Internal);
                        }
                    }
                }
            }
        }
    }
}

fn handle_verdict(shared: &Shared, verdict: SwapVerdict) {
    if let SwapVerdict::RolledBack {
        failed,
        restored_as,
    } = verdict
    {
        shared.m.rollbacks.inc();
        // A rollback changes the serving model too: recollect the
        // drift baseline against the restored generation.
        shared.drift.rebaseline();
        trace::dispatch_event(
            "serve.rollback",
            &[
                ("failed_generation", trace::Value::from(failed)),
                ("restored_as", trace::Value::from(restored_as)),
            ],
        );
    }
}

/// Runs the cascade over a batch under `catch_unwind`.  Workspace
/// accounting survives a panic: the arena is moved into the closure
/// and a fresh one is restored to the pool if it is lost.
fn run_batch(
    shared: &Shared,
    model: &PackedBnn,
    generation: u64,
    jobs: &[Job],
    degraded: bool,
) -> Result<Vec<ClipResult>, ()> {
    let ws = shared.ws_pool.checkout();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut ws = ws;
        for job in jobs {
            if shared.fault.is_poisoned_request(job.id) {
                panic!("injected fault: poisoned request {}", job.id);
            }
        }
        if shared.fault.is_poisoned_generation(generation) {
            panic!("injected fault: poisoned model generation {generation}");
        }
        let results = classify_batch(shared, model, jobs, degraded, &mut ws);
        (results, ws)
    }));
    match outcome {
        Ok((results, ws)) => {
            shared.ws_pool.restore(ws);
            Ok(results)
        }
        Err(_) => {
            // The workspace died with the panic; keep the bounded
            // pool's outstanding count honest with a fresh arena.
            shared.ws_pool.restore(Workspace::new());
            Err(())
        }
    }
}

/// Runs one full-chip scan under `catch_unwind`, mirroring
/// [`run_batch`]'s panic and workspace accounting.  The scanner runs
/// the same triage → confirm cascade per window; degradation maps to
/// triage-only scanning.
fn run_scan(
    shared: &Shared,
    model: &PackedBnn,
    generation: u64,
    job: &Job,
    degraded: bool,
) -> Result<ScanReport, ()> {
    let ws = shared.ws_pool.checkout();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut ws = ws;
        if shared.fault.is_poisoned_request(job.id) {
            panic!("injected fault: poisoned request {}", job.id);
        }
        if shared.fault.is_poisoned_generation(generation) {
            panic!("injected fault: poisoned model generation {generation}");
        }
        let JobPayload::Scan { image, stride } = &job.payload else {
            panic!("scan worker got a non-scan job");
        };
        let config = ScanConfig {
            stride: *stride as usize,
            cascade_threshold: shared.config.cascade_threshold,
            triage_only: degraded,
            dedup: true,
        };
        let scanner = Scanner::new(model, shared.config.input_size, config);
        let report = scanner.scan(image, &mut ws);
        (report, ws)
    }));
    match outcome {
        Ok((report, ws)) => {
            shared.ws_pool.restore(ws);
            Ok(report)
        }
        Err(_) => {
            shared.ws_pool.restore(Workspace::new());
            Err(())
        }
    }
}

/// Completes a scan job: stamps the flight record (a scan is its own
/// batch of one; escalation means any window escalated) and replies
/// with the merged regions.  Scans skip the drift monitor — its
/// baseline models per-clip margins, not per-window grids.
fn finish_scanned(shared: &Shared, mut job: Job, report: &ScanReport, degraded: bool, levels: u8) {
    job.rec.escalated = report.escalated > 0;
    job.rec.degraded = degraded;
    job.rec.m_level = if report.escalated > 0 { levels } else { 1 };
    let regions: Vec<ScanHit> = report
        .regions
        .iter()
        .map(|r| ScanHit {
            x0: r.x0 as u32,
            y0: r.y0 as u32,
            x1: r.x1 as u32,
            y1: r.y1 as u32,
            score: r.score,
            windows: r.windows as u32,
        })
        .collect();
    trace::dispatch_event(
        "serve.scan",
        &[
            ("trace_id", trace::Value::from(job.rec.trace_id)),
            ("windows", trace::Value::from(report.windows)),
            ("regions", trace::Value::from(regions.len())),
            ("reused", trace::Value::from(report.reused)),
            ("escalated", trace::Value::from(report.escalated)),
            ("degraded", trace::Value::from(degraded)),
        ],
    );
    let resp = Response::ScanRegions {
        id: job.id,
        regions,
        windows: report.windows as u32,
        escalated: report.escalated as u32,
        degraded,
        trace_id: job.rec.trace_id,
    };
    finish(shared, job, resp, Outcome::Ok);
}

/// The triage → confirm cascade over one batch (the serving twin of
/// `BnnDetector::classify_cascade`, operating on pre-converted ±1
/// inputs).  While degraded — or for M = 1 models — only the triage
/// pass runs.
fn classify_batch(
    shared: &Shared,
    model: &PackedBnn,
    jobs: &[Job],
    degraded: bool,
    ws: &mut Workspace,
) -> Vec<ClipResult> {
    let side = shared.config.input_size;
    let threshold = shared.config.cascade_threshold;
    let plane = side * side;
    let n = jobs.len();
    let triage = model.plan_capped((side, side), 1);
    let mut input = ws.take_f32(n * plane);
    for (i, job) in jobs.iter().enumerate() {
        let JobPayload::Classify { input: clip } = &job.payload else {
            panic!("classify batch got a non-classify job");
        };
        input[i * plane..(i + 1) * plane].copy_from_slice(clip);
    }
    let mut logits = ws.take_f32(n * 2);
    if shared.config.profile_layers {
        let mut prof = triage.profiler();
        triage.run_into_profiled(&input, n, ws, &mut logits, &mut prof);
        prof.export_to(&shared.registry, "serve_layer_triage", "slot");
    } else {
        // Batches of 2+ clips engage the bit-sliced XNOR-GEMM tier
        // (bit-identical to per-clip execution).
        triage.run_batch_into(&input, n, ws, &mut logits);
    }
    let mut results: Vec<ClipResult> = (0..n)
        .map(|i| {
            let margin = logits[2 * i + 1] - logits[2 * i];
            ClipResult {
                hotspot: margin >= 0.0,
                margin,
                escalated: false,
            }
        })
        .collect();
    ws.give_f32(logits);

    if !degraded && model.levels() > 1 {
        let flagged: Vec<usize> = results
            .iter()
            .enumerate()
            .filter(|(_, r)| r.margin.abs() < threshold)
            .map(|(i, _)| i)
            .collect();
        if !flagged.is_empty() {
            let confirm = model.plan((side, side));
            let m = flagged.len();
            let mut cinput = ws.take_f32(m * plane);
            for (slot, &i) in flagged.iter().enumerate() {
                cinput[slot * plane..(slot + 1) * plane]
                    .copy_from_slice(&input[i * plane..(i + 1) * plane]);
            }
            let mut clogits = ws.take_f32(m * 2);
            if shared.config.profile_layers {
                let mut prof = confirm.profiler();
                confirm.run_into_profiled(&cinput, m, ws, &mut clogits, &mut prof);
                prof.export_to(&shared.registry, "serve_layer_confirm", "slot");
            } else {
                confirm.run_batch_into(&cinput, m, ws, &mut clogits);
            }
            for (slot, &i) in flagged.iter().enumerate() {
                let margin = clogits[2 * slot + 1] - clogits[2 * slot];
                results[i] = ClipResult {
                    hotspot: margin >= 0.0,
                    margin,
                    escalated: true,
                };
            }
            ws.give_f32(clogits);
            ws.give_f32(cinput);
        }
    }
    ws.give_f32(input);
    // Stitch the batch into the trace stream: the first clip's trace
    // id anchors this event to the per-request timelines in the
    // flight recorder.
    trace::dispatch_event(
        "serve.batch",
        &[
            (
                "first_trace_id",
                trace::Value::from(jobs.first().map_or(0, |j| j.rec.trace_id)),
            ),
            ("clips", trace::Value::from(n)),
            (
                "escalated",
                trace::Value::from(results.iter().filter(|r| r.escalated).count()),
            ),
            ("degraded", trace::Value::from(degraded)),
        ],
    );
    results
}
