//! Hardened serving core for the BNN hotspot detector.
//!
//! Everything upstream of this crate answers "is this clip a
//! hotspot?"; this crate answers it *continuously* — as a long-running
//! service that batches work, sheds load, meets deadlines, survives
//! panics and corrupt inputs, and swaps models without dropping a
//! request.  See DESIGN.md §5h for the full architecture.
//!
//! The pieces, bottom-up:
//!
//! * [`proto`] — the length-prefixed TCP wire protocol (typed
//!   requests, typed rejections, a Prometheus scrape on the same
//!   listener).
//! * [`queue`] — the bounded MPMC job queue: admission control and
//!   adaptive batch formation.
//! * [`degrade`] — the hysteresis ladder that trades the cascade's
//!   confirmation stage for throughput under sustained overload.
//! * [`swap`] — hot-swap validation (CRC → architecture fingerprint →
//!   canary batch) and the post-swap auto-rollback monitor.
//! * [`fault`] — deterministic fault injection, compiled in
//!   unconditionally so the failure paths ship tested.
//! * [`server`] / [`client`] — the serving loop and a small blocking
//!   client.
//!
//! # Example
//!
//! ```no_run
//! use hotspot_bnn::{BnnResNet, NetConfig, PackedBnn};
//! use hotspot_geometry::BitImage;
//! use hotspot_serve::{Response, ServeClient, ServeConfig, Server};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let model = PackedBnn::compile(&BnnResNet::new(&NetConfig::tiny(32), &mut rng));
//! let server = Server::start(ServeConfig::new(32), model)?;
//!
//! let mut client = ServeClient::connect(server.addr())?;
//! let clip = BitImage::new(32, 32);
//! match client.classify(1, &clip, 100)? {
//!     Response::Classify { hotspot, margin, .. } => {
//!         println!("hotspot={hotspot} margin={margin:+.3}");
//!     }
//!     Response::Error { code, msg, .. } => println!("rejected ({code}): {msg}"),
//!     other => println!("unexpected reply: {other:?}"),
//! }
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod client;
pub mod degrade;
pub mod fault;
pub mod proto;
pub mod queue;
pub mod server;
pub mod swap;

pub use client::{ClientError, ServeClient};
pub use degrade::{DegradeController, DegradeTransition};
pub use fault::FaultPlan;
pub use proto::{ErrorCode, FrameError, Request, Response, ScanHit, MAX_FRAME_LEN};
pub use queue::{BoundedQueue, PushRejected};
pub use server::{ServeConfig, Server, ShutdownReport};
pub use swap::{validate_and_swap, SwapError, SwapMonitor, SwapVerdict};
