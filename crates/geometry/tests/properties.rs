//! Property-based tests for the geometry substrate.

use hotspot_geometry::{measure, BitImage, Layout, Point, Polygon, Raster, Rect};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0i64..500, 0i64..500, 1i64..200, 1i64..200)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn arb_layout() -> impl Strategy<Value = Layout> {
    prop::collection::vec(arb_rect(), 0..12).prop_map(Layout::from_rects)
}

proptest! {
    /// Intersection is commutative and contained in both operands.
    #[test]
    fn intersection_commutes(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!(i.area() <= a.area().min(b.area()));
        }
    }

    /// The bounding union contains both operands and is the smallest
    /// such rect on each axis.
    #[test]
    fn bounding_union_is_tight(a in arb_rect(), b in arb_rect()) {
        let u = a.bounding_union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert_eq!(u.lo(), a.lo().min(b.lo()));
        prop_assert_eq!(u.hi(), a.hi().max(b.hi()));
    }

    /// Translation preserves dimensions and round-trips.
    #[test]
    fn translate_round_trip(r in arb_rect(), dx in -300i64..300, dy in -300i64..300) {
        let d = Point::new(dx, dy);
        let t = r.translate(d);
        prop_assert_eq!(t.width(), r.width());
        prop_assert_eq!(t.height(), r.height());
        prop_assert_eq!(t.translate(-d), r);
    }

    /// Coverage area is monotone under adding rects, bounded by the sum
    /// of areas, and at least the max single area.
    #[test]
    fn coverage_bounds(rects in prop::collection::vec(arb_rect(), 1..10)) {
        let layout = Layout::from_rects(rects.clone());
        let cov = layout.coverage_area();
        let sum: i64 = rects.iter().map(Rect::area).sum();
        let max = rects.iter().map(Rect::area).max().unwrap();
        prop_assert!(cov <= sum, "coverage {cov} > sum {sum}");
        prop_assert!(cov >= max, "coverage {cov} < max {max}");

        let mut bigger = layout.clone();
        bigger.push(Rect::new(900, 900, 950, 950));
        prop_assert_eq!(bigger.coverage_area(), cov + 2500);
    }

    /// Clipping to a window never increases coverage, and clipping to
    /// the bounding box is a no-op for coverage.
    #[test]
    fn clip_monotone(layout in arb_layout(), w in arb_rect()) {
        let clipped = layout.clip(w);
        prop_assert!(clipped.coverage_area() <= layout.coverage_area());
        if let Some(bb) = layout.bbox() {
            prop_assert_eq!(layout.clip(bb).coverage_area(), layout.coverage_area());
        }
    }

    /// Rasterized pixel count scales with coverage: a raster of a layout
    /// equals pointwise sampling at pixel centres.
    #[test]
    fn raster_matches_sampling(layout in arb_layout()) {
        let window = Rect::new(0, 0, 700, 700);
        let raster = Raster::new(50);
        let img = raster.rasterize(&layout, window);
        for row in 0..14usize {
            for col in 0..14usize {
                let p = Point::new(col as i64 * 50 + 25, row as i64 * 50 + 25);
                let expect = layout.iter().any(|r| r.contains(p));
                prop_assert_eq!(img.get(col, row), expect, "pixel ({}, {})", col, row);
            }
        }
    }

    /// Horizontal + vertical flip of a raster equals rasterizing the
    /// mirrored layout.
    #[test]
    fn flip_commutes_with_mirror(layout in arb_layout()) {
        let window = Rect::new(0, 0, 700, 700);
        let raster = Raster::new(50);
        let img = raster.rasterize(&layout, window);
        // Mirror about the window's vertical centre line.
        let mirrored = layout.mirror_x(350);
        let img_m = raster.rasterize(&mirrored, window);
        prop_assert_eq!(img.flip_horizontal(), img_m);
        let mirrored_y = layout.mirror_y(350);
        let img_my = raster.rasterize(&mirrored_y, window);
        prop_assert_eq!(img.flip_vertical(), img_my);
    }

    /// Bit-image set/clear round-trips and count_ones tracks mutations.
    #[test]
    fn bitimage_count_tracks_sets(coords in prop::collection::btree_set((0usize..96, 0usize..96), 0..64)) {
        let mut img = BitImage::new(96, 96);
        for &(x, y) in &coords {
            img.set(x, y, true);
        }
        prop_assert_eq!(img.count_ones(), coords.len() as u64);
        for &(x, y) in &coords {
            prop_assert!(img.get(x, y));
            img.set(x, y, false);
        }
        prop_assert_eq!(img.count_ones(), 0);
    }

    /// Downsample with threshold epsilon (any coverage) then upsample
    /// check: every set source pixel maps to a set output pixel.
    #[test]
    fn downsample_any_coverage(coords in prop::collection::btree_set((0usize..64, 0usize..64), 0..32)) {
        let mut img = BitImage::new(64, 64);
        for &(x, y) in &coords {
            img.set(x, y, true);
        }
        let d = img.downsample(4, 1e-9);
        for &(x, y) in &coords {
            prop_assert!(d.get(x / 4, y / 4));
        }
        // Output ones never exceed input ones.
        prop_assert!(d.count_ones() <= img.count_ones().max(1));
    }

    /// Spacing is symmetric and zero only for touching rects.
    #[test]
    fn spacing_symmetric(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(measure::spacing(&a, &b), measure::spacing(&b, &a));
        if let Some(s) = measure::spacing(&a, &b) {
            prop_assert!(s >= 0);
            if s == 0 {
                prop_assert!(a.touches(&b));
            }
        } else {
            prop_assert!(a.overlaps(&b));
        }
    }

    /// Polygon rect-decomposition tiles exactly: disjoint and
    /// area-preserving, for randomly generated staircase polygons.
    #[test]
    fn staircase_decomposition(steps in prop::collection::vec((1i64..40, 1i64..40), 1..6)) {
        // Build a staircase polygon from the origin.
        let mut pts = vec![Point::new(0, 0)];
        let mut x = 0;
        for &(dx, _) in &steps {
            x += dx;
        }
        pts.push(Point::new(x, 0));
        let mut y = 0;
        for &(dx, dy) in steps.iter().rev() {
            y += dy;
            pts.push(Point::new(x, y));
            x -= dx;
            pts.push(Point::new(x, y));
        }
        let poly = Polygon::try_new(pts).expect("staircase is rectilinear");
        let rects = poly.to_rects();
        let total: i64 = rects.iter().map(Rect::area).sum();
        prop_assert_eq!(total, poly.area());
        for (i, a) in rects.iter().enumerate() {
            for b in rects.iter().skip(i + 1) {
                prop_assert!(!a.overlaps(b));
            }
        }
    }
}
