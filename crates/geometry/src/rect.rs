//! Axis-aligned rectangles.

use crate::point::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle spanning `[lo.x, hi.x] × [lo.y, hi.y]`.
///
/// Invariant: `lo.x <= hi.x` and `lo.y <= hi.y`.  Degenerate (zero-width
/// or zero-height) rectangles are allowed and have zero [`area`].
///
/// # Example
///
/// ```
/// use hotspot_geometry::Rect;
///
/// let wire = Rect::new(0, 0, 100, 20);
/// assert_eq!(wire.width(), 100);
/// assert_eq!(wire.height(), 20);
/// assert_eq!(wire.area(), 2000);
/// ```
///
/// [`area`]: Rect::area
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    lo: Point,
    hi: Point,
}

impl Rect {
    /// Creates a rectangle from two corner coordinates.
    ///
    /// The corners may be given in any order; they are normalized so that
    /// `lo` is the component-wise minimum.
    pub fn new(x0: i64, y0: i64, x1: i64, y1: i64) -> Self {
        let a = Point::new(x0, y0);
        let b = Point::new(x1, y1);
        Rect {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Creates a rectangle from corner points, normalizing the order.
    pub fn from_points(a: Point, b: Point) -> Self {
        Rect {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Creates a rectangle centred at `center` with the given width and
    /// height.  Odd dimensions are rounded down on the high side.
    pub fn centered(center: Point, width: i64, height: i64) -> Self {
        let half_w = width / 2;
        let half_h = height / 2;
        Rect::new(
            center.x - half_w,
            center.y - half_h,
            center.x - half_w + width,
            center.y - half_h + height,
        )
    }

    /// The lower-left corner.
    pub fn lo(&self) -> Point {
        self.lo
    }

    /// The upper-right corner.
    pub fn hi(&self) -> Point {
        self.hi
    }

    /// Horizontal extent in nanometres.
    pub fn width(&self) -> i64 {
        self.hi.x - self.lo.x
    }

    /// Vertical extent in nanometres.
    pub fn height(&self) -> i64 {
        self.hi.y - self.lo.y
    }

    /// Area in square nanometres.
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// `true` when the rectangle has zero area.
    pub fn is_degenerate(&self) -> bool {
        self.width() == 0 || self.height() == 0
    }

    /// The centre point (coordinates rounded toward `lo`).
    pub fn center(&self) -> Point {
        Point::new(self.lo.x + self.width() / 2, self.lo.y + self.height() / 2)
    }

    /// `true` when `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// `true` when `p` lies strictly inside.
    pub fn contains_strict(&self, p: Point) -> bool {
        p.x > self.lo.x && p.x < self.hi.x && p.y > self.lo.y && p.y < self.hi.y
    }

    /// `true` when `other` lies entirely inside `self` (boundaries may touch).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.lo.x <= other.lo.x
            && self.lo.y <= other.lo.y
            && self.hi.x >= other.hi.x
            && self.hi.y >= other.hi.y
    }

    /// `true` when the two rectangles share interior area (touching
    /// boundaries do **not** count as overlap).
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.lo.x < other.hi.x
            && other.lo.x < self.hi.x
            && self.lo.y < other.hi.y
            && other.lo.y < self.hi.y
    }

    /// `true` when the rectangles overlap or their boundaries touch.
    pub fn touches(&self, other: &Rect) -> bool {
        self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// The overlapping region, or `None` when the interiors are disjoint.
    ///
    /// ```
    /// use hotspot_geometry::Rect;
    /// let a = Rect::new(0, 0, 10, 10);
    /// let b = Rect::new(5, 5, 20, 20);
    /// assert_eq!(a.intersection(&b), Some(Rect::new(5, 5, 10, 10)));
    /// ```
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Rect {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        })
    }

    /// The smallest rectangle containing both inputs.
    pub fn bounding_union(&self, other: &Rect) -> Rect {
        Rect {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Translates the rectangle by the displacement `d`.
    pub fn translate(&self, d: Point) -> Rect {
        Rect {
            lo: self.lo + d,
            hi: self.hi + d,
        }
    }

    /// Grows (or, for negative `margin`, shrinks) the rectangle by
    /// `margin` on every side.
    ///
    /// # Panics
    ///
    /// Panics if a negative margin would invert the rectangle.
    pub fn inflate(&self, margin: i64) -> Rect {
        let r = Rect {
            lo: self.lo - Point::new(margin, margin),
            hi: self.hi + Point::new(margin, margin),
        };
        assert!(
            r.lo.x <= r.hi.x && r.lo.y <= r.hi.y,
            "inflate by {margin} inverted rectangle {self}"
        );
        r
    }

    /// Reflects across the vertical axis `x = axis`.
    pub fn mirror_x(&self, axis: i64) -> Rect {
        Rect::new(
            2 * axis - self.hi.x,
            self.lo.y,
            2 * axis - self.lo.x,
            self.hi.y,
        )
    }

    /// Reflects across the horizontal axis `y = axis`.
    pub fn mirror_y(&self, axis: i64) -> Rect {
        Rect::new(
            self.lo.x,
            2 * axis - self.hi.y,
            self.hi.x,
            2 * axis - self.lo.y,
        )
    }

    /// Swaps x and y, reflecting across the line `y = x`.
    pub fn transpose(&self) -> Rect {
        Rect::from_points(self.lo.transpose(), self.hi.transpose())
    }

    /// The horizontal gap between the interiors of two rectangles, or 0
    /// when they overlap in x.
    pub fn gap_x(&self, other: &Rect) -> i64 {
        (other.lo.x - self.hi.x).max(self.lo.x - other.hi.x).max(0)
    }

    /// The vertical gap between the interiors of two rectangles, or 0
    /// when they overlap in y.
    pub fn gap_y(&self, other: &Rect) -> i64 {
        (other.lo.y - self.hi.y).max(self.lo.y - other.hi.y).max(0)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_corners() {
        let r = Rect::new(10, 20, 0, 5);
        assert_eq!(r.lo(), Point::new(0, 5));
        assert_eq!(r.hi(), Point::new(10, 20));
        assert_eq!(r.width(), 10);
        assert_eq!(r.height(), 15);
    }

    #[test]
    fn centered_dimensions() {
        let r = Rect::centered(Point::new(100, 100), 40, 20);
        assert_eq!(r.width(), 40);
        assert_eq!(r.height(), 20);
        assert_eq!(r.center(), Point::new(100, 100));
    }

    #[test]
    fn containment() {
        let r = Rect::new(0, 0, 10, 10);
        assert!(r.contains(Point::new(0, 0)));
        assert!(r.contains(Point::new(10, 10)));
        assert!(!r.contains_strict(Point::new(10, 10)));
        assert!(r.contains_strict(Point::new(5, 5)));
        assert!(r.contains_rect(&Rect::new(2, 2, 8, 8)));
        assert!(!r.contains_rect(&Rect::new(2, 2, 12, 8)));
    }

    #[test]
    fn overlap_vs_touch() {
        let a = Rect::new(0, 0, 10, 10);
        let abutting = Rect::new(10, 0, 20, 10);
        assert!(!a.overlaps(&abutting));
        assert!(a.touches(&abutting));
        let across = Rect::new(5, 5, 15, 15);
        assert!(a.overlaps(&across));
        assert_eq!(a.intersection(&across), Some(Rect::new(5, 5, 10, 10)));
        assert_eq!(a.intersection(&abutting), None);
    }

    #[test]
    fn union_and_translate() {
        let a = Rect::new(0, 0, 1, 1);
        let b = Rect::new(5, 5, 6, 6);
        assert_eq!(a.bounding_union(&b), Rect::new(0, 0, 6, 6));
        assert_eq!(a.translate(Point::new(3, 4)), Rect::new(3, 4, 4, 5));
    }

    #[test]
    fn inflate_and_mirror() {
        let r = Rect::new(2, 2, 4, 6);
        assert_eq!(r.inflate(1), Rect::new(1, 1, 5, 7));
        assert_eq!(r.inflate(1).inflate(-1), r);
        assert_eq!(r.mirror_x(0), Rect::new(-4, 2, -2, 6));
        assert_eq!(r.mirror_y(0), Rect::new(2, -6, 4, -2));
        assert_eq!(r.transpose(), Rect::new(2, 2, 6, 4));
    }

    #[test]
    #[should_panic(expected = "inverted rectangle")]
    fn inflate_panics_when_inverting() {
        Rect::new(0, 0, 2, 2).inflate(-2);
    }

    #[test]
    fn gaps() {
        let a = Rect::new(0, 0, 10, 10);
        let right = Rect::new(25, 0, 30, 10);
        assert_eq!(a.gap_x(&right), 15);
        assert_eq!(right.gap_x(&a), 15);
        assert_eq!(a.gap_y(&right), 0);
        let above = Rect::new(0, 14, 10, 20);
        assert_eq!(a.gap_y(&above), 4);
    }

    #[test]
    fn degenerate() {
        let r = Rect::new(5, 5, 5, 10);
        assert!(r.is_degenerate());
        assert_eq!(r.area(), 0);
    }
}
