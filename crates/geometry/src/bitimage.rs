//! Bit-packed binary images.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A bit-packed binary image: the rasterized form of a layout clip.
///
/// Rows are stored packed into `u64` words, least-significant bit first,
/// so an image row of width `w` occupies `ceil(w / 64)` words.  This is
/// both the rasterizer output and, one abstraction level up, the
/// bit-plane representation the binary convolution engine consumes.
///
/// # Example
///
/// ```
/// use hotspot_geometry::BitImage;
///
/// let mut img = BitImage::new(8, 8);
/// img.set(3, 4, true);
/// assert!(img.get(3, 4));
/// assert_eq!(img.count_ones(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitImage {
    width: usize,
    height: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitImage {
    /// Creates an all-zero image of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(
            width > 0 && height > 0,
            "BitImage dimensions must be positive"
        );
        let words_per_row = width.div_ceil(64);
        BitImage {
            width,
            height,
            words_per_row,
            words: vec![0; words_per_row * height],
        }
    }

    /// Rebuilds an image from its dimensions and packed row words, as
    /// produced by [`BitImage::as_words`]. Used by the persistence
    /// codec.
    ///
    /// # Errors
    ///
    /// Returns a message when the word count does not match the
    /// dimensions or a padding bit beyond `width` is set.
    pub fn from_words(width: usize, height: usize, words: Vec<u64>) -> Result<Self, String> {
        if width == 0 || height == 0 {
            return Err(format!("degenerate image dims {width}x{height}"));
        }
        let words_per_row = width.div_ceil(64);
        if words.len() != words_per_row * height {
            return Err(format!(
                "{width}x{height} image needs {} words, got {}",
                words_per_row * height,
                words.len()
            ));
        }
        if !width.is_multiple_of(64) {
            let mask = !((1u64 << (width % 64)) - 1);
            if words
                .chunks_exact(words_per_row)
                .any(|row| row[words_per_row - 1] & mask != 0)
            {
                return Err("padding bits beyond image width are set".into());
            }
        }
        Ok(BitImage {
            width,
            height,
            words_per_row,
            words,
        })
    }

    /// The raw packed words, row-major: row `y` occupies words
    /// `y * ceil(width / 64) ..`.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel value at column `x`, row `y`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, x: usize, y: usize) -> bool {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        let w = self.words[y * self.words_per_row + x / 64];
        (w >> (x % 64)) & 1 == 1
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, x: usize, y: usize, value: bool) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        let w = &mut self.words[y * self.words_per_row + x / 64];
        if value {
            *w |= 1 << (x % 64);
        } else {
            *w &= !(1 << (x % 64));
        }
    }

    /// Fills the horizontal pixel run `[x0, x1)` in row `y`.
    ///
    /// # Panics
    ///
    /// Panics when the run exceeds the image bounds.
    pub fn fill_row_span(&mut self, y: usize, x0: usize, x1: usize) {
        assert!(
            y < self.height && x0 <= x1 && x1 <= self.width,
            "span out of bounds"
        );
        let base = y * self.words_per_row;
        let mut x = x0;
        while x < x1 {
            let word = x / 64;
            let bit = x % 64;
            let run = (x1 - x).min(64 - bit);
            let mask = if run == 64 {
                !0u64
            } else {
                ((1u64 << run) - 1) << bit
            };
            self.words[base + word] |= mask;
            x += run;
        }
    }

    /// Number of set pixels.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Fraction of set pixels in `[0, 1]`.
    pub fn density(&self) -> f64 {
        self.count_ones() as f64 / (self.width * self.height) as f64
    }

    /// The packed words of row `y`.
    pub fn row_words(&self, y: usize) -> &[u64] {
        &self.words[y * self.words_per_row..(y + 1) * self.words_per_row]
    }

    /// Converts to a dense `f32` buffer (row-major), with set pixels as
    /// 1.0 and clear pixels as 0.0.
    pub fn to_f32(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.width * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                out.push(if self.get(x, y) { 1.0 } else { 0.0 });
            }
        }
        out
    }

    /// Converts to a dense `±1` `f32` buffer, the input convention of the
    /// binarized network (set → +1.0, clear → −1.0).
    pub fn to_signed_f32(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.width * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                out.push(if self.get(x, y) { 1.0 } else { -1.0 });
            }
        }
        out
    }

    /// Down-samples by an integer `factor` using area thresholding: an
    /// output pixel is set when at least `threshold` of its
    /// `factor × factor` source block is set (`threshold` in `(0, 1]`).
    ///
    /// This is the paper's §3.4.1 down-sampling of layout clips to
    /// `l_s × l_s` inputs.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is zero, does not divide both dimensions, or
    /// `threshold` is outside `(0, 1]`.
    pub fn downsample(&self, factor: usize, threshold: f64) -> BitImage {
        assert!(factor > 0, "factor must be positive");
        assert!(
            self.width.is_multiple_of(factor) && self.height.is_multiple_of(factor),
            "factor {factor} must divide {}x{}",
            self.width,
            self.height
        );
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "threshold must be in (0, 1]"
        );
        let ow = self.width / factor;
        let oh = self.height / factor;
        let need = (threshold * (factor * factor) as f64).ceil() as usize;
        let mut out = BitImage::new(ow, oh);
        for oy in 0..oh {
            for ox in 0..ow {
                let mut ones = 0usize;
                'block: for dy in 0..factor {
                    for dx in 0..factor {
                        if self.get(ox * factor + dx, oy * factor + dy) {
                            ones += 1;
                            if ones >= need {
                                break 'block;
                            }
                        }
                    }
                }
                if ones >= need {
                    out.set(ox, oy, true);
                }
            }
        }
        out
    }

    /// Flips the image left-to-right (the paper's horizontal-flip
    /// augmentation).
    pub fn flip_horizontal(&self) -> BitImage {
        let mut out = BitImage::new(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                if self.get(x, y) {
                    out.set(self.width - 1 - x, y, true);
                }
            }
        }
        out
    }

    /// Flips the image top-to-bottom (the paper's vertical-flip
    /// augmentation).
    pub fn flip_vertical(&self) -> BitImage {
        let mut out = BitImage::new(self.width, self.height);
        for y in 0..self.height {
            let src = self.row_words(self.height - 1 - y).to_vec();
            let dst = y * self.words_per_row;
            out.words[dst..dst + self.words_per_row].copy_from_slice(&src);
        }
        out
    }
}

impl fmt::Display for BitImage {
    /// Renders the image as rows of `#`/`.` characters — handy in test
    /// failures and the litho-inspection example.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for y in (0..self.height).rev() {
            for x in 0..self.width {
                f.write_str(if self.get(x, y) { "#" } else { "." })?;
            }
            f.write_str("\n")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_round_trip() {
        let mut img = BitImage::new(130, 3); // crosses a word boundary
        img.set(0, 0, true);
        img.set(63, 1, true);
        img.set(64, 1, true);
        img.set(129, 2, true);
        assert!(img.get(0, 0));
        assert!(img.get(63, 1));
        assert!(img.get(64, 1));
        assert!(img.get(129, 2));
        assert!(!img.get(1, 0));
        assert_eq!(img.count_ones(), 4);
        img.set(63, 1, false);
        assert!(!img.get(63, 1));
        assert_eq!(img.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        BitImage::new(4, 4).get(4, 0);
    }

    #[test]
    fn fill_row_span_crossing_words() {
        let mut img = BitImage::new(200, 1);
        img.fill_row_span(0, 60, 140);
        for x in 0..200 {
            assert_eq!(img.get(x, 0), (60..140).contains(&x), "x={x}");
        }
        assert_eq!(img.count_ones(), 80);
    }

    #[test]
    fn fill_full_row() {
        let mut img = BitImage::new(64, 2);
        img.fill_row_span(1, 0, 64);
        assert_eq!(img.count_ones(), 64);
        assert!(img.get(0, 1) && img.get(63, 1));
        assert!(!img.get(0, 0));
    }

    #[test]
    fn density_and_f32() {
        let mut img = BitImage::new(2, 2);
        img.set(0, 0, true);
        assert!((img.density() - 0.25).abs() < 1e-12);
        assert_eq!(img.to_f32(), vec![1.0, 0.0, 0.0, 0.0]);
        assert_eq!(img.to_signed_f32(), vec![1.0, -1.0, -1.0, -1.0]);
    }

    #[test]
    fn downsample_majority() {
        let mut img = BitImage::new(4, 4);
        // Fill the lower-left 2x2 block fully, one pixel of upper-right.
        img.fill_row_span(0, 0, 2);
        img.fill_row_span(1, 0, 2);
        img.set(3, 3, true);
        let d = img.downsample(2, 0.5);
        assert_eq!(d.width(), 2);
        assert!(d.get(0, 0));
        assert!(!d.get(1, 1)); // 1/4 < 0.5
        let d_low = img.downsample(2, 0.25);
        assert!(d_low.get(1, 1)); // 1/4 >= 0.25
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn downsample_requires_divisibility() {
        BitImage::new(5, 4).downsample(2, 0.5);
    }

    #[test]
    fn flips() {
        let mut img = BitImage::new(3, 2);
        img.set(0, 0, true);
        let h = img.flip_horizontal();
        assert!(h.get(2, 0));
        assert!(!h.get(0, 0));
        let v = img.flip_vertical();
        assert!(v.get(0, 1));
        assert!(!v.get(0, 0));
        // Double flip restores.
        assert_eq!(img.flip_horizontal().flip_horizontal(), img);
        assert_eq!(img.flip_vertical().flip_vertical(), img);
    }

    #[test]
    fn display_renders() {
        let mut img = BitImage::new(2, 2);
        img.set(0, 1, true);
        assert_eq!(img.to_string(), "#.\n..\n");
    }
}
