//! Spacing and width measurement between layout shapes.
//!
//! These measurements back both the synthetic pattern generators (which
//! need to place shapes at controlled spacings) and the lithography
//! hotspot oracle (which flags marginal spacings and widths).

use crate::layout::Layout;
use crate::rect::Rect;

/// How two disjoint rectangles face each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeRelation {
    /// The rectangles overlap in their y-projections and face each other
    /// horizontally across the given gap, sharing `run` nanometres of
    /// facing edge length.
    FacingX {
        /// Horizontal gap in nanometres.
        gap: i64,
        /// Length of the shared facing run in nanometres.
        run: i64,
    },
    /// The rectangles overlap in their x-projections and face each other
    /// vertically.
    FacingY {
        /// Vertical gap in nanometres.
        gap: i64,
        /// Length of the shared facing run in nanometres.
        run: i64,
    },
    /// The rectangles are diagonal neighbours with the given axis gaps.
    Diagonal {
        /// Horizontal gap in nanometres.
        gap_x: i64,
        /// Vertical gap in nanometres.
        gap_y: i64,
    },
    /// The rectangles overlap (no spacing defined).
    Overlapping,
}

/// Classifies the spatial relation between two rectangles.
///
/// # Example
///
/// ```
/// use hotspot_geometry::{measure::edge_relation, EdgeRelation, Rect};
///
/// let a = Rect::new(0, 0, 10, 40);
/// let b = Rect::new(25, 10, 35, 30);
/// assert_eq!(edge_relation(&a, &b), EdgeRelation::FacingX { gap: 15, run: 20 });
/// ```
pub fn edge_relation(a: &Rect, b: &Rect) -> EdgeRelation {
    if a.overlaps(b) {
        return EdgeRelation::Overlapping;
    }
    let gx = a.gap_x(b);
    let gy = a.gap_y(b);
    let run_y = overlap_len(a.lo().y, a.hi().y, b.lo().y, b.hi().y);
    let run_x = overlap_len(a.lo().x, a.hi().x, b.lo().x, b.hi().x);
    match (gx > 0, gy > 0) {
        (true, false) => EdgeRelation::FacingX {
            gap: gx,
            run: run_y,
        },
        (false, true) => EdgeRelation::FacingY {
            gap: gy,
            run: run_x,
        },
        (true, true) => EdgeRelation::Diagonal {
            gap_x: gx,
            gap_y: gy,
        },
        (false, false) => {
            // Touching boundaries: zero gap along the axis with zero
            // projection overlap.
            if run_y > 0 {
                EdgeRelation::FacingX { gap: 0, run: run_y }
            } else {
                EdgeRelation::FacingY { gap: 0, run: run_x }
            }
        }
    }
}

/// Effective spacing between two disjoint rectangles: the facing-edge gap
/// for aligned pairs, the Euclidean corner distance (rounded down) for
/// diagonal pairs, or `None` when they overlap.
pub fn spacing(a: &Rect, b: &Rect) -> Option<i64> {
    match edge_relation(a, b) {
        EdgeRelation::Overlapping => None,
        EdgeRelation::FacingX { gap, .. } | EdgeRelation::FacingY { gap, .. } => Some(gap),
        EdgeRelation::Diagonal { gap_x, gap_y } => {
            Some(((gap_x * gap_x + gap_y * gap_y) as f64).sqrt() as i64)
        }
    }
}

/// The minimum spacing over all disjoint rectangle pairs in `layout`, or
/// `None` when fewer than two disjoint shapes exist.
///
/// O(n²) pairwise scan — fine at clip scale.
pub fn min_spacing(layout: &Layout) -> Option<i64> {
    let rects = layout.rects();
    let mut best: Option<i64> = None;
    for (i, a) in rects.iter().enumerate() {
        for b in rects.iter().skip(i + 1) {
            if let Some(s) = spacing(a, b) {
                best = Some(best.map_or(s, |cur| cur.min(s)));
            }
        }
    }
    best
}

/// The minimum feature width (shorter side) over all rectangles, or
/// `None` for an empty layout.
///
/// Note: for layouts where a single polygon is stored as several
/// overlapping/abutting rectangles this is a conservative lower bound on
/// the true drawn width.
pub fn min_width(layout: &Layout) -> Option<i64> {
    layout.iter().map(|r| r.width().min(r.height())).min()
}

fn overlap_len(a0: i64, a1: i64, b0: i64, b1: i64) -> i64 {
    (a1.min(b1) - a0.max(b0)).max(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facing_x() {
        let a = Rect::new(0, 0, 10, 40);
        let b = Rect::new(25, 10, 35, 30);
        assert_eq!(
            edge_relation(&a, &b),
            EdgeRelation::FacingX { gap: 15, run: 20 }
        );
        assert_eq!(spacing(&a, &b), Some(15));
        // Symmetric.
        assert_eq!(spacing(&b, &a), Some(15));
    }

    #[test]
    fn facing_y_tip_to_tip() {
        // Two vertical wires tip to tip: the classic hotspot pattern.
        let a = Rect::new(0, 0, 20, 100);
        let b = Rect::new(0, 130, 20, 230);
        assert_eq!(
            edge_relation(&a, &b),
            EdgeRelation::FacingY { gap: 30, run: 20 }
        );
        assert_eq!(spacing(&a, &b), Some(30));
    }

    #[test]
    fn diagonal_uses_euclidean() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(13, 14, 20, 20);
        assert_eq!(
            edge_relation(&a, &b),
            EdgeRelation::Diagonal { gap_x: 3, gap_y: 4 }
        );
        assert_eq!(spacing(&a, &b), Some(5));
    }

    #[test]
    fn overlapping_has_no_spacing() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 15, 15);
        assert_eq!(edge_relation(&a, &b), EdgeRelation::Overlapping);
        assert_eq!(spacing(&a, &b), None);
    }

    #[test]
    fn touching_is_zero_gap() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 0, 20, 10);
        assert_eq!(
            edge_relation(&a, &b),
            EdgeRelation::FacingX { gap: 0, run: 10 }
        );
        assert_eq!(spacing(&a, &b), Some(0));
    }

    #[test]
    fn layout_min_spacing_and_width() {
        let layout = Layout::from_rects([
            Rect::new(0, 0, 10, 100),  // width 10
            Rect::new(40, 0, 55, 100), // 30 away
            Rect::new(70, 0, 90, 100), // 15 away from the middle wire
        ]);
        assert_eq!(min_spacing(&layout), Some(15));
        assert_eq!(min_width(&layout), Some(10));
        assert_eq!(min_spacing(&Layout::new()), None);
        assert_eq!(min_width(&Layout::new()), None);
        let single = Layout::from_rects([Rect::new(0, 0, 5, 9)]);
        assert_eq!(min_spacing(&single), None);
        assert_eq!(min_width(&single), Some(5));
    }
}
