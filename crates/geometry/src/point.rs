//! Integer-nanometre points.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// A point in the layout plane, in integer nanometres.
///
/// `Point` doubles as a displacement vector; [`Add`] and [`Sub`] are
/// component-wise.
///
/// # Example
///
/// ```
/// use hotspot_geometry::Point;
///
/// let p = Point::new(10, 20) + Point::new(-4, 6);
/// assert_eq!(p, Point::new(6, 26));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Point {
    /// Horizontal coordinate in nanometres.
    pub x: i64,
    /// Vertical coordinate in nanometres.
    pub y: i64,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0, 0);

    /// Manhattan (L1) distance to `other`.
    ///
    /// ```
    /// use hotspot_geometry::Point;
    /// assert_eq!(Point::new(0, 0).manhattan_distance(Point::new(3, -4)), 7);
    /// ```
    pub fn manhattan_distance(self, other: Point) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Chebyshev (L∞) distance to `other`.
    pub fn chebyshev_distance(self, other: Point) -> i64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Component-wise minimum.
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Swaps the coordinates, reflecting across the line `y = x`.
    pub fn transpose(self) -> Point {
        Point::new(self.y, self.x)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    fn add_assign(&mut self, rhs: Point) {
        *self = *self + rhs;
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    fn sub_assign(&mut self, rhs: Point) {
        *self = *self - rhs;
    }
}

impl Neg for Point {
    type Output = Point;
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl From<(i64, i64)> for Point {
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(x, y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point::new(3, 5);
        let b = Point::new(-1, 2);
        assert_eq!(a + b, Point::new(2, 7));
        assert_eq!(a - b, Point::new(4, 3));
        assert_eq!(-a, Point::new(-3, -5));
        let mut c = a;
        c += b;
        assert_eq!(c, Point::new(2, 7));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn distances() {
        let a = Point::new(0, 0);
        let b = Point::new(3, -4);
        assert_eq!(a.manhattan_distance(b), 7);
        assert_eq!(a.chebyshev_distance(b), 4);
        assert_eq!(b.manhattan_distance(a), 7);
    }

    #[test]
    fn min_max_transpose() {
        let a = Point::new(1, 9);
        let b = Point::new(4, 2);
        assert_eq!(a.min(b), Point::new(1, 2));
        assert_eq!(a.max(b), Point::new(4, 9));
        assert_eq!(a.transpose(), Point::new(9, 1));
    }

    #[test]
    fn conversions_and_display() {
        let p: Point = (7, 8).into();
        assert_eq!(p, Point::new(7, 8));
        assert_eq!(p.to_string(), "(7, 8)");
    }
}
