//! Manhattan layout geometry substrate for lithography hotspot detection.
//!
//! This crate provides the geometric foundation that every other crate in
//! the workspace builds on: integer-nanometre [`Point`]s and [`Rect`]s,
//! rectilinear [`Polygon`]s, a flat [`Layout`] container with clip-window
//! extraction, and rasterization of layout clips into bit-packed binary
//! images ([`BitImage`]) — the direct input representation used by the
//! binarized neural network of the DAC'19 paper this workspace reproduces.
//!
//! All coordinates are `i64` nanometres.  Rectangles are half-open on
//! neither side: a [`Rect`] spans `[lo.x, hi.x] × [lo.y, hi.y]` in
//! continuous space, and rasterization treats pixel `(c, r)` as covered
//! when the pixel-centre sample point falls inside a shape.
//!
//! # Example
//!
//! ```
//! use hotspot_geometry::{Layout, Rect, Raster};
//!
//! let mut layout = Layout::new();
//! layout.push(Rect::new(0, 0, 400, 40));   // a horizontal wire
//! layout.push(Rect::new(0, 80, 400, 120)); // a parallel wire
//!
//! let raster = Raster::new(10); // 10 nm / pixel
//! let img = raster.rasterize(&layout, Rect::new(0, 0, 640, 640));
//! assert_eq!(img.width(), 64);
//! assert!(img.count_ones() > 0);
//! ```

pub mod bitimage;
pub mod error;
pub mod layout;
pub mod measure;
pub mod point;
pub mod polygon;
pub mod raster;
pub mod rect;

pub use bitimage::BitImage;
pub use error::GeometryError;
pub use layout::Layout;
pub use measure::{min_spacing, EdgeRelation};
pub use point::Point;
pub use polygon::Polygon;
pub use raster::Raster;
pub use rect::Rect;
