//! Flat layout container.

use crate::point::Point;
use crate::polygon::Polygon;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// A single-layer mask layout: a flat collection of rectangles.
///
/// Rectilinear polygons are stored decomposed into rectangles, so the
/// container is a simple "rect soup" — the representation used by the
/// rasterizer and the lithography simulator.  Rectangles may overlap;
/// [`coverage_area`](Layout::coverage_area) deduplicates overlap when
/// measuring.
///
/// # Example
///
/// ```
/// use hotspot_geometry::{Layout, Rect};
///
/// let mut layout = Layout::new();
/// layout.push(Rect::new(0, 0, 10, 10));
/// layout.push(Rect::new(5, 0, 15, 10)); // overlaps the first
/// assert_eq!(layout.coverage_area(), 150); // not 200
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Layout {
    rects: Vec<Rect>,
}

impl Layout {
    /// Creates an empty layout.
    pub fn new() -> Self {
        Layout { rects: Vec::new() }
    }

    /// Creates a layout from existing rectangles, dropping degenerate ones.
    pub fn from_rects<I: IntoIterator<Item = Rect>>(rects: I) -> Self {
        Layout {
            rects: rects.into_iter().filter(|r| !r.is_degenerate()).collect(),
        }
    }

    /// Adds a rectangle.  Degenerate rectangles are ignored.
    pub fn push(&mut self, r: Rect) {
        if !r.is_degenerate() {
            self.rects.push(r);
        }
    }

    /// Adds a rectilinear polygon, decomposed into rectangles.
    pub fn push_polygon(&mut self, p: &Polygon) {
        for r in p.to_rects() {
            self.push(r);
        }
    }

    /// Number of stored rectangles.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// `true` when the layout holds no rectangles.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// The stored rectangles.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Iterates over the stored rectangles.
    pub fn iter(&self) -> std::slice::Iter<'_, Rect> {
        self.rects.iter()
    }

    /// Bounding box of all rectangles, or `None` for an empty layout.
    pub fn bbox(&self) -> Option<Rect> {
        let mut it = self.rects.iter();
        let first = *it.next()?;
        Some(it.fold(first, |acc, r| acc.bounding_union(r)))
    }

    /// Total covered area, counting overlapping regions once.
    ///
    /// Uses a coordinate-compressed sweep; O(n² log n) in the number of
    /// rectangles, which is fine at clip scale (tens of shapes).
    pub fn coverage_area(&self) -> i64 {
        if self.rects.is_empty() {
            return 0;
        }
        let mut xs: Vec<i64> = Vec::with_capacity(self.rects.len() * 2);
        for r in &self.rects {
            xs.push(r.lo().x);
            xs.push(r.hi().x);
        }
        xs.sort_unstable();
        xs.dedup();

        let mut area = 0i64;
        for w in xs.windows(2) {
            let (x0, x1) = (w[0], w[1]);
            // y-intervals of rects spanning this slab.
            let mut ivs: Vec<(i64, i64)> = self
                .rects
                .iter()
                .filter(|r| r.lo().x <= x0 && r.hi().x >= x1)
                .map(|r| (r.lo().y, r.hi().y))
                .collect();
            ivs.sort_unstable();
            let mut covered = 0i64;
            let mut cur: Option<(i64, i64)> = None;
            for (y0, y1) in ivs {
                match cur {
                    None => cur = Some((y0, y1)),
                    Some((cy0, cy1)) => {
                        if y0 <= cy1 {
                            cur = Some((cy0, cy1.max(y1)));
                        } else {
                            covered += cy1 - cy0;
                            cur = Some((y0, y1));
                        }
                    }
                }
            }
            if let Some((cy0, cy1)) = cur {
                covered += cy1 - cy0;
            }
            area += covered * (x1 - x0);
        }
        area
    }

    /// Pattern density inside `window`: covered area / window area.
    ///
    /// Returns 0.0 for a degenerate window.
    pub fn density(&self, window: Rect) -> f64 {
        if window.area() == 0 {
            return 0.0;
        }
        let clipped = self.clip(window);
        clipped.coverage_area() as f64 / window.area() as f64
    }

    /// Extracts the sub-layout inside `window`, clipping rectangles to
    /// the window boundary.  Coordinates are preserved (not re-origined);
    /// use [`translate`](Layout::translate) to move the clip to the
    /// origin.
    pub fn clip(&self, window: Rect) -> Layout {
        Layout {
            rects: self
                .rects
                .iter()
                .filter_map(|r| r.intersection(&window))
                .filter(|r| !r.is_degenerate())
                .collect(),
        }
    }

    /// Translates every rectangle by `d`.
    pub fn translate(&self, d: Point) -> Layout {
        Layout {
            rects: self.rects.iter().map(|r| r.translate(d)).collect(),
        }
    }

    /// Reflects the layout across the vertical axis `x = axis`.
    pub fn mirror_x(&self, axis: i64) -> Layout {
        Layout {
            rects: self.rects.iter().map(|r| r.mirror_x(axis)).collect(),
        }
    }

    /// Reflects the layout across the horizontal axis `y = axis`.
    pub fn mirror_y(&self, axis: i64) -> Layout {
        Layout {
            rects: self.rects.iter().map(|r| r.mirror_y(axis)).collect(),
        }
    }

    /// Merges another layout's rectangles into this one.
    pub fn merge(&mut self, other: &Layout) {
        self.rects.extend_from_slice(&other.rects);
    }
}

impl Extend<Rect> for Layout {
    fn extend<I: IntoIterator<Item = Rect>>(&mut self, iter: I) {
        for r in iter {
            self.push(r);
        }
    }
}

impl FromIterator<Rect> for Layout {
    fn from_iter<I: IntoIterator<Item = Rect>>(iter: I) -> Self {
        Layout::from_rects(iter)
    }
}

impl<'a> IntoIterator for &'a Layout {
    type Item = &'a Rect;
    type IntoIter = std::slice::Iter<'a, Rect>;
    fn into_iter(self) -> Self::IntoIter {
        self.rects.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_ignores_degenerate() {
        let mut l = Layout::new();
        l.push(Rect::new(0, 0, 0, 10));
        assert!(l.is_empty());
        l.push(Rect::new(0, 0, 5, 10));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn coverage_deduplicates_overlap() {
        let l = Layout::from_rects([Rect::new(0, 0, 10, 10), Rect::new(5, 0, 15, 10)]);
        assert_eq!(l.coverage_area(), 150);
        let disjoint = Layout::from_rects([Rect::new(0, 0, 10, 10), Rect::new(20, 0, 30, 10)]);
        assert_eq!(disjoint.coverage_area(), 200);
        let nested = Layout::from_rects([Rect::new(0, 0, 10, 10), Rect::new(2, 2, 8, 8)]);
        assert_eq!(nested.coverage_area(), 100);
    }

    #[test]
    fn coverage_triple_overlap() {
        let l = Layout::from_rects([
            Rect::new(0, 0, 10, 10),
            Rect::new(0, 0, 10, 10),
            Rect::new(0, 0, 10, 10),
        ]);
        assert_eq!(l.coverage_area(), 100);
    }

    #[test]
    fn bbox_and_density() {
        let l = Layout::from_rects([Rect::new(0, 0, 10, 10), Rect::new(30, 30, 40, 40)]);
        assert_eq!(l.bbox(), Some(Rect::new(0, 0, 40, 40)));
        assert!(Layout::new().bbox().is_none());
        let d = l.density(Rect::new(0, 0, 40, 40));
        assert!((d - 200.0 / 1600.0).abs() < 1e-12);
        assert_eq!(l.density(Rect::new(0, 0, 0, 0)), 0.0);
    }

    #[test]
    fn clip_cuts_rects() {
        let l = Layout::from_rects([Rect::new(0, 0, 100, 10)]);
        let c = l.clip(Rect::new(40, 0, 60, 20));
        assert_eq!(c.rects(), &[Rect::new(40, 0, 60, 10)]);
        // A rect fully outside disappears.
        let c2 = l.clip(Rect::new(200, 0, 300, 10));
        assert!(c2.is_empty());
    }

    #[test]
    fn translate_and_mirror() {
        let l = Layout::from_rects([Rect::new(0, 0, 10, 4)]);
        let t = l.translate(Point::new(5, 5));
        assert_eq!(t.rects(), &[Rect::new(5, 5, 15, 9)]);
        let m = l.mirror_x(0);
        assert_eq!(m.rects(), &[Rect::new(-10, 0, 0, 4)]);
        let my = l.mirror_y(2);
        assert_eq!(my.rects(), &[Rect::new(0, 0, 10, 4)]);
    }

    #[test]
    fn collect_and_extend() {
        let mut l: Layout = [Rect::new(0, 0, 1, 1)].into_iter().collect();
        l.extend([Rect::new(1, 1, 2, 2), Rect::new(3, 3, 3, 3)]);
        assert_eq!(l.len(), 2); // degenerate dropped
        assert_eq!((&l).into_iter().count(), 2);
    }

    #[test]
    fn push_polygon_tiles() {
        let p = Polygon::try_new(vec![
            Point::new(0, 0),
            Point::new(20, 0),
            Point::new(20, 10),
            Point::new(10, 10),
            Point::new(10, 20),
            Point::new(0, 20),
        ])
        .expect("valid L");
        let mut l = Layout::new();
        l.push_polygon(&p);
        assert_eq!(l.coverage_area(), p.area());
    }
}
