//! Rectilinear (Manhattan) polygons.

use crate::error::GeometryError;
use crate::point::Point;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// A simple rectilinear polygon given by its outline vertices.
///
/// Consecutive vertices must differ in exactly one coordinate (every edge
/// is horizontal or vertical), and the outline is implicitly closed from
/// the last vertex back to the first.  Orientation may be clockwise or
/// counter-clockwise.
///
/// # Example
///
/// ```
/// use hotspot_geometry::{Point, Polygon, Rect};
///
/// // An L-shape.
/// let poly = Polygon::try_new(vec![
///     Point::new(0, 0),
///     Point::new(30, 0),
///     Point::new(30, 10),
///     Point::new(10, 10),
///     Point::new(10, 30),
///     Point::new(0, 30),
/// ])?;
/// assert_eq!(poly.area(), 30 * 10 + 10 * 20);
/// let rects = poly.to_rects();
/// assert_eq!(rects.iter().map(Rect::area).sum::<i64>(), poly.area());
/// # Ok::<(), hotspot_geometry::GeometryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a rectilinear polygon from an outline.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::TooFewVertices`] for outlines with fewer
    /// than 4 vertices, and [`GeometryError::NotRectilinear`] when any
    /// edge (including the closing edge) is diagonal.
    /// [`GeometryError::DegenerateOutline`] is returned when the enclosed
    /// area is zero.
    pub fn try_new(vertices: Vec<Point>) -> Result<Self, GeometryError> {
        if vertices.len() < 4 {
            return Err(GeometryError::TooFewVertices {
                got: vertices.len(),
            });
        }
        let n = vertices.len();
        for i in 0..n {
            let a = vertices[i];
            let b = vertices[(i + 1) % n];
            let dx = b.x - a.x;
            let dy = b.y - a.y;
            if (dx != 0) == (dy != 0) {
                // Diagonal edge, or zero-length edge (both zero).
                return Err(GeometryError::NotRectilinear { edge: i });
            }
        }
        let poly = Polygon { vertices };
        if poly.signed_area_x2() == 0 {
            return Err(GeometryError::DegenerateOutline);
        }
        Ok(poly)
    }

    /// Creates the rectangle `r` as a four-vertex polygon.
    pub fn from_rect(r: Rect) -> Self {
        Polygon {
            vertices: vec![
                r.lo(),
                Point::new(r.hi().x, r.lo().y),
                r.hi(),
                Point::new(r.lo().x, r.hi().y),
            ],
        }
    }

    /// The outline vertices.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Twice the signed (shoelace) area; positive for counter-clockwise
    /// outlines.
    fn signed_area_x2(&self) -> i64 {
        let n = self.vertices.len();
        let mut acc = 0i64;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += a.x * b.y - b.x * a.y;
        }
        acc
    }

    /// Enclosed area in square nanometres.
    pub fn area(&self) -> i64 {
        self.signed_area_x2().abs() / 2
    }

    /// Axis-aligned bounding box of the outline.
    pub fn bbox(&self) -> Rect {
        let mut lo = self.vertices[0];
        let mut hi = self.vertices[0];
        for &v in &self.vertices[1..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Rect::from_points(lo, hi)
    }

    /// `true` when `p` lies on the polygon outline.
    pub fn on_outline(&self, p: Point) -> bool {
        let n = self.vertices.len();
        (0..n).any(|i| {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if a.x == b.x {
                p.x == a.x && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
            } else {
                p.y == a.y && p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x)
            }
        })
    }

    /// `true` when `p` lies strictly inside the polygon (ray casting);
    /// points on the outline are outside.
    pub fn contains_strict(&self, p: Point) -> bool {
        if self.on_outline(p) {
            return false;
        }
        let n = self.vertices.len();
        // Cast a ray in +x; count vertical edges crossing the ray's y
        // strictly left of p. Half-open [ymin, ymax) intervals make
        // vertices unambiguous.
        let mut crossings = 0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if a.x == b.x && a.x < p.x {
                let (y0, y1) = (a.y.min(b.y), a.y.max(b.y));
                if p.y >= y0 && p.y < y1 {
                    crossings += 1;
                }
            }
        }
        crossings % 2 == 1
    }

    /// Decomposes the polygon into disjoint rectangles by vertical-slab
    /// sweep.  The rectangles tile the polygon exactly: they are pairwise
    /// interior-disjoint and their areas sum to [`area`](Polygon::area).
    pub fn to_rects(&self) -> Vec<Rect> {
        // Distinct x coordinates define slabs; within a slab the covered
        // y-set is constant and equals the odd-parity region of vertical
        // edges at or left of the slab.
        let mut xs: Vec<i64> = self.vertices.iter().map(|v| v.x).collect();
        xs.sort_unstable();
        xs.dedup();

        // All vertical edges as (x, ymin, ymax).
        let n = self.vertices.len();
        let mut vedges = Vec::new();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if a.x == b.x {
                vedges.push((a.x, a.y.min(b.y), a.y.max(b.y)));
            }
        }

        let mut rects = Vec::new();
        for w in xs.windows(2) {
            let (x0, x1) = (w[0], w[1]);
            // Parity sweep over y for edges with x <= x0.
            let mut events: Vec<(i64, i64)> = Vec::new();
            for &(ex, y0, y1) in &vedges {
                if ex <= x0 {
                    events.push((y0, 1));
                    events.push((y1, -1));
                }
            }
            events.sort_unstable();
            let mut parity = 0i64;
            let mut run_start = 0i64;
            let mut i = 0;
            while i < events.len() {
                let y = events[i].0;
                let before = parity;
                while i < events.len() && events[i].0 == y {
                    parity += events[i].1;
                    i += 1;
                }
                if before % 2 == 0 && parity % 2 != 0 {
                    run_start = y;
                } else if before % 2 != 0 && parity % 2 == 0 && y > run_start {
                    rects.push(Rect::new(x0, run_start, x1, y));
                }
            }
        }
        rects
    }
}

impl From<Rect> for Polygon {
    fn from(r: Rect) -> Self {
        Polygon::from_rect(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polygon {
        Polygon::try_new(vec![
            Point::new(0, 0),
            Point::new(30, 0),
            Point::new(30, 10),
            Point::new(10, 10),
            Point::new(10, 30),
            Point::new(0, 30),
        ])
        .expect("valid L shape")
    }

    #[test]
    fn rejects_diagonal() {
        let err = Polygon::try_new(vec![
            Point::new(0, 0),
            Point::new(10, 10),
            Point::new(10, 0),
            Point::new(0, 5),
        ])
        .unwrap_err();
        assert_eq!(err, GeometryError::NotRectilinear { edge: 0 });
    }

    #[test]
    fn rejects_too_few() {
        let err = Polygon::try_new(vec![Point::new(0, 0), Point::new(1, 0)]).unwrap_err();
        assert_eq!(err, GeometryError::TooFewVertices { got: 2 });
    }

    #[test]
    fn rejects_zero_area() {
        let err = Polygon::try_new(vec![
            Point::new(0, 0),
            Point::new(10, 0),
            Point::new(10, 0),
            Point::new(0, 0),
        ])
        .unwrap_err();
        // Zero-length edges are caught as non-rectilinear first.
        assert!(matches!(
            err,
            GeometryError::NotRectilinear { .. } | GeometryError::DegenerateOutline
        ));
    }

    #[test]
    fn l_shape_area_and_bbox() {
        let p = l_shape();
        assert_eq!(p.area(), 300 + 200);
        assert_eq!(p.bbox(), Rect::new(0, 0, 30, 30));
    }

    #[test]
    fn l_shape_decomposition_tiles_exactly() {
        let p = l_shape();
        let rects = p.to_rects();
        let total: i64 = rects.iter().map(Rect::area).sum();
        assert_eq!(total, p.area());
        for (i, a) in rects.iter().enumerate() {
            for b in rects.iter().skip(i + 1) {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn containment_matches_decomposition() {
        let p = l_shape();
        let rects = p.to_rects();
        for x in 0..31 {
            for y in 0..31 {
                let pt = Point::new(x, y);
                if p.contains_strict(pt) {
                    // Interior points are covered by the tiling (possibly
                    // on an internal seam, hence non-strict containment).
                    assert!(
                        rects.iter().any(|r| r.contains(pt)),
                        "interior point {pt} not covered by tiles"
                    );
                } else if !p.on_outline(pt) {
                    // Exterior points are strictly outside every tile.
                    assert!(
                        !rects.iter().any(|r| r.contains_strict(pt)),
                        "exterior point {pt} inside a tile"
                    );
                }
            }
        }
    }

    #[test]
    fn from_rect_round_trip() {
        let r = Rect::new(3, 4, 10, 20);
        let p: Polygon = r.into();
        assert_eq!(p.area(), r.area());
        assert_eq!(p.bbox(), r);
        assert_eq!(p.to_rects(), vec![r]);
    }

    #[test]
    fn u_shape_decomposes_to_three() {
        // A U shape: two legs and a base.
        let p = Polygon::try_new(vec![
            Point::new(0, 0),
            Point::new(50, 0),
            Point::new(50, 30),
            Point::new(40, 30),
            Point::new(40, 10),
            Point::new(10, 10),
            Point::new(10, 30),
            Point::new(0, 30),
        ])
        .expect("valid U");
        let rects = p.to_rects();
        let total: i64 = rects.iter().map(Rect::area).sum();
        assert_eq!(total, p.area());
        assert_eq!(p.area(), 50 * 10 + 2 * (10 * 20));
    }
}
