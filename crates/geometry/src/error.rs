//! Error types for geometry operations.

use std::error::Error;
use std::fmt;

/// Error returned by fallible geometry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// A polygon outline was not rectilinear (an edge was neither
    /// horizontal nor vertical).
    NotRectilinear {
        /// Index of the offending edge's starting vertex.
        edge: usize,
    },
    /// A polygon outline had fewer than 4 vertices.
    TooFewVertices {
        /// Number of vertices supplied.
        got: usize,
    },
    /// A polygon outline was self-intersecting or otherwise degenerate.
    DegenerateOutline,
    /// A raster request had a non-positive resolution or empty window.
    InvalidRaster {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::NotRectilinear { edge } => {
                write!(
                    f,
                    "polygon edge starting at vertex {edge} is not axis-aligned"
                )
            }
            GeometryError::TooFewVertices { got } => {
                write!(
                    f,
                    "rectilinear polygon needs at least 4 vertices, got {got}"
                )
            }
            GeometryError::DegenerateOutline => {
                write!(f, "polygon outline is degenerate or self-intersecting")
            }
            GeometryError::InvalidRaster { reason } => {
                write!(f, "invalid raster request: {reason}")
            }
        }
    }
}

impl Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(GeometryError::NotRectilinear { edge: 3 }
            .to_string()
            .contains("vertex 3"));
        assert!(GeometryError::TooFewVertices { got: 2 }
            .to_string()
            .contains("got 2"));
        let e = GeometryError::InvalidRaster {
            reason: "zero resolution".into(),
        };
        assert!(e.to_string().contains("zero resolution"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<GeometryError>();
    }
}
