//! Layout-to-bitmap rasterization.

use crate::bitimage::BitImage;
use crate::error::GeometryError;
use crate::layout::Layout;
use crate::rect::Rect;

/// Rasterizes layout clips into [`BitImage`]s at a fixed resolution.
///
/// A pixel is set when its centre sample point lies inside (or on the
/// boundary of the interior of) any layout rectangle.  Pixel `(c, r)` of
/// a window with lower-left corner `(wx, wy)` samples the layout at
/// `(wx + c·res + res/2, wy + r·res + res/2)`.
///
/// # Example
///
/// ```
/// use hotspot_geometry::{Layout, Raster, Rect};
///
/// let layout = Layout::from_rects([Rect::new(0, 0, 100, 20)]);
/// let raster = Raster::new(10);
/// let img = raster.rasterize(&layout, Rect::new(0, 0, 200, 40));
/// assert_eq!((img.width(), img.height()), (20, 4));
/// assert!(img.get(0, 0) && img.get(9, 1));
/// assert!(!img.get(10, 0)); // beyond x = 100
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Raster {
    resolution: i64,
}

impl Raster {
    /// Creates a rasterizer with the given pixel pitch in nanometres.
    ///
    /// # Panics
    ///
    /// Panics when `resolution` is not positive.
    pub fn new(resolution: i64) -> Self {
        assert!(
            resolution > 0,
            "resolution must be positive, got {resolution}"
        );
        Raster { resolution }
    }

    /// The pixel pitch in nanometres.
    pub fn resolution(&self) -> i64 {
        self.resolution
    }

    /// Pixel dimensions of `window` at this resolution, or an error when
    /// the window does not divide evenly.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::InvalidRaster`] when the window is empty
    /// or its dimensions are not multiples of the resolution.
    pub fn grid_size(&self, window: Rect) -> Result<(usize, usize), GeometryError> {
        let (w, h) = (window.width(), window.height());
        if w <= 0 || h <= 0 {
            return Err(GeometryError::InvalidRaster {
                reason: format!("window {window} is empty"),
            });
        }
        if w % self.resolution != 0 || h % self.resolution != 0 {
            return Err(GeometryError::InvalidRaster {
                reason: format!(
                    "window {w}x{h} nm is not a multiple of resolution {} nm",
                    self.resolution
                ),
            });
        }
        Ok((
            (w / self.resolution) as usize,
            (h / self.resolution) as usize,
        ))
    }

    /// Rasterizes the part of `layout` inside `window`.
    ///
    /// # Panics
    ///
    /// Panics when the window is empty or not an exact multiple of the
    /// resolution (use [`grid_size`](Raster::grid_size) to validate
    /// first).
    pub fn rasterize(&self, layout: &Layout, window: Rect) -> BitImage {
        let (cols, rows) = self
            .grid_size(window)
            .expect("window must be a positive multiple of the raster resolution");
        let mut img = BitImage::new(cols, rows);
        let res = self.resolution;
        // For each rect, compute the covered pixel-centre range directly:
        // pixel centre x = wx + c*res + res/2 is inside [lo, hi] when
        // c >= (lo - wx - res/2)/res and c <= (hi - wx - res/2)/res.
        for r in layout.iter() {
            let Some(r) = r.intersection(&window) else {
                continue;
            };
            let c0 = ceil_div(2 * (r.lo().x - window.lo().x) - res, 2 * res).max(0);
            let c1 = floor_div(2 * (r.hi().x - window.lo().x) - res, 2 * res);
            let r0 = ceil_div(2 * (r.lo().y - window.lo().y) - res, 2 * res).max(0);
            let r1 = floor_div(2 * (r.hi().y - window.lo().y) - res, 2 * res);
            if c1 < c0 || r1 < r0 {
                continue;
            }
            let c1 = (c1 as usize).min(cols - 1);
            let r1 = (r1 as usize).min(rows - 1);
            for row in r0 as usize..=r1 {
                img.fill_row_span(row, c0 as usize, c1 + 1);
            }
        }
        img
    }
}

fn ceil_div(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    if a >= 0 {
        (a + b - 1) / b
    } else {
        a / b
    }
}

fn floor_div(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    if a >= 0 {
        a / b
    } else {
        -((-a + b - 1) / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn div_helpers() {
        assert_eq!(ceil_div(7, 2), 4);
        assert_eq!(ceil_div(-7, 2), -3);
        assert_eq!(ceil_div(8, 2), 4);
        assert_eq!(floor_div(7, 2), 3);
        assert_eq!(floor_div(-7, 2), -4);
        assert_eq!(floor_div(-8, 2), -4);
    }

    #[test]
    fn grid_size_validation() {
        let r = Raster::new(10);
        assert_eq!(r.grid_size(Rect::new(0, 0, 100, 50)), Ok((10, 5)));
        assert!(r.grid_size(Rect::new(0, 0, 105, 50)).is_err());
        assert!(r.grid_size(Rect::new(0, 0, 0, 50)).is_err());
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn zero_resolution_panics() {
        Raster::new(0);
    }

    #[test]
    fn rasterize_matches_pointwise_sampling() {
        let layout = Layout::from_rects([Rect::new(13, 7, 57, 33), Rect::new(40, 20, 90, 60)]);
        let window = Rect::new(0, 0, 100, 70);
        let raster = Raster::new(10);
        let img = raster.rasterize(&layout, window);
        for row in 0..7 {
            for col in 0..10 {
                let cx = col as i64 * 10 + 5;
                let cy = row as i64 * 10 + 5;
                let expected = layout.iter().any(|r| r.contains(crate::Point::new(cx, cy)));
                assert_eq!(img.get(col, row), expected, "pixel ({col},{row})");
            }
        }
    }

    #[test]
    fn rasterize_respects_window_offset() {
        let layout = Layout::from_rects([Rect::new(100, 100, 140, 140)]);
        let raster = Raster::new(10);
        let img = raster.rasterize(&layout, Rect::new(100, 100, 200, 200));
        assert!(img.get(0, 0));
        assert!(img.get(3, 3));
        assert!(!img.get(4, 4));
    }

    #[test]
    fn shapes_outside_window_ignored() {
        let layout = Layout::from_rects([Rect::new(-50, -50, -10, -10)]);
        let raster = Raster::new(10);
        let img = raster.rasterize(&layout, Rect::new(0, 0, 100, 100));
        assert_eq!(img.count_ones(), 0);
    }

    #[test]
    fn empty_layout_rasterizes_blank() {
        let raster = Raster::new(8);
        let img = raster.rasterize(&Layout::new(), Rect::new(0, 0, 64, 64));
        assert_eq!(img.count_ones(), 0);
        assert_eq!((img.width(), img.height()), (8, 8));
    }
}
