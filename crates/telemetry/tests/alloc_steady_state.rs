//! Allocation regression test for the request-scoped observability
//! path (DESIGN.md §5i).
//!
//! The flight recorder and windowed histograms sit on the serving hot
//! path — one `record()` per completed request, one `observe()` per
//! latency/margin sample.  Their contract: after construction
//! preallocates the ring(s), the steady state allocates **nothing**.
//! `RequestRecord` is `Copy` into a fixed slot, `find()` scans in
//! place, and a windowed observation lands in a pre-sized time slice
//! (expired slices are reset in place, never reallocated).  Dump paths
//! (`snapshot`, `to_jsonl`) may allocate — they run on the debug
//! endpoint, not per request.
//!
//! The file intentionally holds a single `#[test]`: the counter is
//! process-global, and a sibling test allocating on another thread
//! while the measured window is open would produce false positives.

use hotspot_telemetry::{
    next_trace_id, Clock, DriftConfig, DriftMonitor, FlightRecorder, MockClock, Outcome,
    RequestRecord, Stage, WindowedHistogram,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Wraps the system allocator and counts every allocation made while
/// the measurement window is open.  Deallocations are not counted:
/// freeing is fine in a steady state, allocating is not (and these
/// paths do neither).
struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn sample_record(trace_id: u64, clock: &dyn Clock) -> RequestRecord {
    let mut rec = RequestRecord::new(trace_id, trace_id ^ 0xbeef, clock.now_ns());
    rec.mark(Stage::Admission, 1_200);
    rec.mark(Stage::QueueWait, 48_000);
    rec.mark(Stage::Batch, 900);
    rec.mark(Stage::Dispatch, 400);
    rec.mark(Stage::Inference, 310_000);
    rec.mark(Stage::Reply, 2_100);
    rec.batch_size = 8;
    rec.m_level = 2;
    rec.escalated = trace_id.is_multiple_of(3);
    rec.deadline_slack_ns = 5_000_000;
    rec.outcome = Outcome::Ok;
    rec
}

#[test]
fn steady_state_observability_performs_zero_heap_allocations() {
    let clock = Arc::new(MockClock::new());
    let flight = FlightRecorder::new(64);
    let window = WindowedHistogram::with_clock(
        8,
        1_000_000_000,
        &[1e4, 1e5, 1e6, 1e7],
        clock.clone() as Arc<dyn Clock>,
    );
    let drift = DriftMonitor::with_clock(
        DriftConfig {
            baseline_samples: 32,
            min_window_samples: 8,
            ..DriftConfig::default()
        },
        clock.clone() as Arc<dyn Clock>,
    );

    // Warm-up: mint IDs (the atomic is static, not heap), fill the ring
    // past capacity so every later record overwrites a live slot, put
    // samples in every window slice it will touch, and push the drift
    // monitor through baseline collection into the monitoring phase.
    for _ in 0..96 {
        let id = next_trace_id();
        flight.record(sample_record(id, clock.as_ref()));
        window.observe(250_000.0);
        drift.observe(0.5, false);
        clock.advance(125_000_000); // stays inside one slice per ~8 obs
    }
    assert!(!drift.is_collecting(), "warm-up froze the drift baseline");
    let probe = next_trace_id();
    flight.record(sample_record(probe, clock.as_ref()));

    // Measured window: the per-request path — mint, record, find,
    // windowed observe, drift observe + compare.
    ALLOC_CALLS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..256 {
        let id = next_trace_id();
        flight.record(sample_record(id, clock.as_ref()));
        window.observe(250_000.0);
        drift.observe(0.5, false);
    }
    let found = flight.find(probe);
    let n_window = window.count();
    let rate = window.rate_per_sec();
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOC_CALLS.load(Ordering::SeqCst);

    assert_eq!(
        allocs, 0,
        "steady-state recorder/window/drift path allocated {allocs} \
         time(s); record() must copy into a preallocated slot and \
         observe() must land in a pre-sized slice"
    );
    // And the path still works: the probe was overwritten by the 256
    // later records (capacity 64), the last batch is findable, and the
    // window saw everything in its span.
    assert_eq!(found, None, "probe rotated out of the 64-slot ring");
    assert!(flight.find(next_trace_id() - 1).is_some());
    assert!(n_window > 0 && rate > 0.0);
    assert_eq!(flight.len(), 64);
}
