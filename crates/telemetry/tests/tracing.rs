//! Tracing facade behaviour: span nesting and parent links, per-thread
//! stacks, subscriber swap semantics, and concurrent emission safety.
//!
//! The subscriber registration is process-global, so every test that
//! installs one serialises through [`GLOBAL_LOCK`].

use hotspot_telemetry::subscribers::{CollectingSubscriber, Record};
use hotspot_telemetry::{event, span, trace};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

fn global_lock() -> MutexGuard<'static, ()> {
    static GLOBAL_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    GLOBAL_LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Installs a fresh collector, runs `f`, restores the previous
/// subscriber, and returns what was captured.
fn with_collector(f: impl FnOnce()) -> Vec<Record> {
    let sink = Arc::new(CollectingSubscriber::new());
    let old = trace::set_subscriber(sink.clone());
    f();
    match old {
        Some(prev) => {
            trace::set_subscriber(prev);
        }
        None => {
            trace::clear_subscriber();
        }
    }
    sink.records()
}

#[test]
fn no_subscriber_means_no_records_and_no_panic() {
    let _guard = global_lock();
    trace::clear_subscriber();
    assert!(!trace::enabled());
    let g = span!("quiet.span", n = 1usize);
    event!("quiet.event", ok = true);
    assert_eq!(g.id(), None, "disabled span carries no id");
    drop(g);
    assert_eq!(trace::current_span(), None);
}

#[test]
fn nested_spans_link_parents_and_events_attach_to_innermost() {
    let _guard = global_lock();
    let records = with_collector(|| {
        let outer = span!("outer", depth = 0usize);
        let outer_id = outer.id().expect("enabled");
        {
            let inner = span!("inner", depth = 1usize);
            assert_eq!(trace::current_span(), inner.id());
            event!("leaf", v = 7u64);
        }
        assert_eq!(trace::current_span(), Some(outer_id));
        event!("after_inner");
    });

    let starts: Vec<_> = records
        .iter()
        .filter_map(|r| match r {
            Record::SpanStart { id, parent, name } => Some((*id, *parent, name.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(starts.len(), 2);
    let (outer_id, outer_parent, _) = starts[0].clone();
    let (inner_id, inner_parent, inner_name) = starts[1].clone();
    assert_eq!(outer_parent, None);
    assert_eq!(inner_parent, Some(outer_id), "inner must link to outer");
    assert_eq!(inner_name, "inner");

    // Events land in the innermost open span at emission time.
    let events: Vec<_> = records
        .iter()
        .filter_map(|r| match r {
            Record::Event { name, span, .. } => Some((name.clone(), *span)),
            _ => None,
        })
        .collect();
    assert_eq!(events[0], ("leaf".to_string(), Some(inner_id)));
    assert_eq!(events[1], ("after_inner".to_string(), Some(outer_id)));

    // Both spans closed, inner first.
    let ends: Vec<_> = records
        .iter()
        .filter_map(|r| match r {
            Record::SpanEnd { id, .. } => Some(*id),
            _ => None,
        })
        .collect();
    assert_eq!(ends, vec![inner_id, outer_id]);
}

#[test]
fn span_stacks_are_per_thread() {
    let _guard = global_lock();
    let records = with_collector(|| {
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    let _sp = span!("worker", thread = t as u64);
                    event!("work", thread = t as u64);
                });
            }
        });
    });
    // Every worker produced exactly one start, one event, one end — and
    // no worker's span is parented to another thread's span.
    let mut starts = 0;
    for r in &records {
        if let Record::SpanStart { parent, .. } = r {
            assert_eq!(*parent, None, "cross-thread parent leak");
            starts += 1;
        }
    }
    assert_eq!(starts, 4);
    // Each event is attached to a span that this collector saw start.
    let ids: Vec<u64> = records
        .iter()
        .filter_map(|r| match r {
            Record::SpanStart { id, .. } => Some(*id),
            _ => None,
        })
        .collect();
    for r in &records {
        if let Record::Event { span, .. } = r {
            let id = span.expect("event inside a span");
            assert!(ids.contains(&id));
        }
    }
}

#[test]
fn concurrent_emission_drops_nothing() {
    let _guard = global_lock();
    const THREADS: usize = 8;
    const EVENTS: usize = 250;
    let records = with_collector(|| {
        std::thread::scope(|s| {
            for t in 0..THREADS {
                s.spawn(move || {
                    for i in 0..EVENTS {
                        let _sp = span!("hot", t = t as u64);
                        event!("tick", i = i as u64);
                    }
                });
            }
        });
    });
    let events = records
        .iter()
        .filter(|r| matches!(r, Record::Event { .. }))
        .count();
    let starts = records
        .iter()
        .filter(|r| matches!(r, Record::SpanStart { .. }))
        .count();
    let ends = records
        .iter()
        .filter(|r| matches!(r, Record::SpanEnd { .. }))
        .count();
    assert_eq!(events, THREADS * EVENTS);
    assert_eq!(starts, THREADS * EVENTS);
    assert_eq!(ends, starts, "every span must close");
}

#[test]
fn field_values_round_trip_through_the_subscriber() {
    let _guard = global_lock();
    let records = with_collector(|| {
        event!(
            "typed",
            u = 3usize,
            i = -4i64,
            f = 2.5f64,
            b = true,
            s = "text"
        );
    });
    let Record::Event { fields, .. } = &records[0] else {
        panic!("expected event, got {records:?}");
    };
    use hotspot_telemetry::Value;
    assert_eq!(fields[0], ("u".to_string(), Value::U64(3)));
    assert_eq!(fields[1], ("i".to_string(), Value::I64(-4)));
    assert_eq!(fields[2], ("f".to_string(), Value::F64(2.5)));
    assert_eq!(fields[3], ("b".to_string(), Value::Bool(true)));
    assert_eq!(fields[4], ("s".to_string(), Value::Str("text".into())));
}

#[test]
fn jsonl_subscriber_writes_parseable_lines() {
    let _guard = global_lock();
    let path = std::env::temp_dir().join(format!("brnn_telemetry_jsonl_{}", std::process::id()));
    {
        let sink = Arc::new(hotspot_telemetry::JsonlSubscriber::create(&path).expect("create"));
        let old = trace::set_subscriber(sink.clone());
        {
            let _sp = span!("io.span", n = 1usize);
            event!("io.event", msg = "hello \"world\"\n");
        }
        match old {
            Some(prev) => {
                trace::set_subscriber(prev);
            }
            None => {
                trace::clear_subscriber();
            }
        }
        sink.flush();
    }
    let text = std::fs::read_to_string(&path).expect("read");
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "span_start + event + span_end:\n{text}");
    assert!(lines[0].contains("\"type\":\"span_start\""), "{}", lines[0]);
    assert!(lines[0].contains("\"name\":\"io.span\""), "{}", lines[0]);
    assert!(lines[1].contains("\"type\":\"event\""), "{}", lines[1]);
    assert!(
        lines[1].contains("\\\"world\\\"\\n"),
        "escaping broken: {}",
        lines[1]
    );
    assert!(lines[2].contains("\"duration_ns\""), "{}", lines[2]);
    // Balanced braces and quotes on every line (cheap well-formedness
    // check without a JSON parser).
    for line in &lines {
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "unbalanced braces: {line}"
        );
        assert!(line.starts_with('{') && line.ends_with('}'));
    }
}
