//! Histogram percentile math: exact-bucket edge cases, the empty
//! histogram, and the single-sample histogram (ISSUE 3 satellite).

use hotspot_telemetry::MetricsRegistry;

#[test]
fn empty_histogram_has_no_percentiles() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("empty", &[1.0, 2.0]);
    let snap = h.snapshot();
    assert_eq!(snap.count, 0);
    assert_eq!(snap.quantile(0.5), None);
    assert_eq!(snap.percentiles(), None);
    assert_eq!(snap.mean(), None);
}

#[test]
fn single_sample_every_quantile_lands_in_its_bucket() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("one", &[10.0, 100.0, 1000.0]);
    h.observe(50.0); // second bucket, (10, 100]
    let snap = h.snapshot();
    for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
        let v = snap.quantile(q).expect("non-empty");
        assert!(
            (10.0..=100.0).contains(&v),
            "q={q}: estimate {v} escaped the sample's bucket"
        );
    }
    // q = 1.0 is exactly the bucket's upper bound.
    assert_eq!(snap.quantile(1.0), Some(100.0));
}

#[test]
fn quantile_on_exact_bucket_boundaries() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("edges", &[10.0, 20.0, 30.0, 40.0]);
    // A value equal to a bound belongs to that bound's bucket (`<=`).
    for v in [10.0, 20.0, 30.0, 40.0] {
        h.observe(v);
    }
    let snap = h.snapshot();
    assert_eq!(snap.counts, vec![1, 1, 1, 1, 0]);
    // Rank q*n hits each cumulative-count boundary exactly: the
    // estimate is the bucket's upper bound, with no bleed into the
    // next bucket.
    assert_eq!(snap.quantile(0.25), Some(10.0));
    assert_eq!(snap.quantile(0.50), Some(20.0));
    assert_eq!(snap.quantile(0.75), Some(30.0));
    assert_eq!(snap.quantile(1.00), Some(40.0));
}

#[test]
fn first_bucket_interpolates_from_zero() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("low", &[100.0]);
    for _ in 0..4 {
        h.observe(1.0);
    }
    let snap = h.snapshot();
    // Uniform-in-bucket assumption: p50 of 4 samples in (0, 100] is at
    // rank 2 of 4 → halfway up the bucket.
    assert_eq!(snap.quantile(0.5), Some(50.0));
    assert_eq!(snap.quantile(0.25), Some(25.0));
}

#[test]
fn overflow_bucket_reports_highest_finite_bound() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("over", &[10.0, 100.0]);
    h.observe(1e9);
    h.observe(1e9);
    let snap = h.snapshot();
    assert_eq!(snap.counts, vec![0, 0, 2]);
    // The +∞ bucket has no upper edge; the estimator clamps to the
    // highest finite bound rather than inventing a number.
    assert_eq!(snap.quantile(0.5), Some(100.0));
    assert_eq!(snap.quantile(0.99), Some(100.0));
}

#[test]
fn percentiles_are_ordered_on_a_spread_distribution() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram(
        "spread",
        &hotspot_telemetry::exponential_buckets(1.0, 2.0, 16),
    );
    for i in 0..1000 {
        h.observe(1.0 + (i as f64) * 37.0 % 30000.0);
    }
    let (p50, p95, p99) = h.snapshot().percentiles().expect("non-empty");
    assert!(p50 <= p95 && p95 <= p99, "({p50}, {p95}, {p99})");
    assert!(p50 > 0.0);
}

#[test]
#[should_panic(expected = "quantile must be in")]
fn out_of_range_quantile_is_rejected() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("bad", &[1.0]);
    h.observe(0.5);
    let _ = h.snapshot().quantile(0.0);
}
