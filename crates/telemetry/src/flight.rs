//! A lock-light flight recorder: the last N completed requests, each
//! with a per-stage timeline, in a fixed-capacity ring buffer.
//!
//! Cumulative counters answer "how many requests missed their
//! deadline"; the flight recorder answers "*why did request 0x4f3a
//! miss its deadline*" — it keeps one [`RequestRecord`] per completed
//! request (queue wait, batch size, M-level used, deadline slack,
//! outcome, per-stage durations), keyed by a compact trace ID minted
//! at admission (or accepted from the client).
//!
//! The recorder is built for the serving hot path:
//!
//! * **Zero steady-state allocation** — [`RequestRecord`] is `Copy`,
//!   the ring is allocated once at construction, and
//!   [`record`](FlightRecorder::record) copies the record into a
//!   pre-existing slot (enforced by a counting-allocator test).
//! * **Lock-light** — one short mutex hold per record/lookup; the
//!   critical section is a fixed-size memcpy, never an allocation or a
//!   syscall.
//! * **Dumpable** — [`to_jsonl`](FlightRecorder::to_jsonl) renders the
//!   ring oldest-first as JSON lines (the `GET /debug/requests` body),
//!   and [`RequestRecord::parse_jsonl`] reads a line back, so the
//!   `trace_dump` analyzer round-trips without an external JSON crate.

use crate::json::push_str_literal;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Mints a process-unique trace ID (non-zero, monotonically
/// increasing).  Zero is reserved to mean "no trace ID yet" on the
/// wire, so admission can tell a client-supplied ID from an absent one.
pub fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The stages of a request's life, in pipeline order.  Indexes into
/// [`RequestRecord::stage_ns`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Frame decode, validation, and input conversion, up to the queue
    /// push.
    Admission = 0,
    /// Sitting in the bounded queue waiting for a worker.
    QueueWait = 1,
    /// Batch formation: from the worker's pop to the start of dispatch
    /// checks.
    Batch = 2,
    /// Dispatch checks (deadline enforcement, model fetch) before
    /// inference starts.
    Dispatch = 3,
    /// The inference pass (triage, plus confirmation when escalated).
    Inference = 4,
    /// Encoding and handing the response to the connection writer.
    Reply = 5,
}

/// Number of stages tracked per request.
pub const STAGE_COUNT: usize = 6;

/// Stage names in index order (JSONL keys and analyzer labels).
pub const STAGE_NAMES: [&str; STAGE_COUNT] = [
    "admission",
    "queue_wait",
    "batch",
    "dispatch",
    "inference",
    "reply",
];

/// How a request left the system.  The numeric value is stable (it is
/// what the JSONL dump carries alongside the name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum Outcome {
    /// Classified and answered.
    #[default]
    Ok = 0,
    /// Deadline expired while queued; answered without inference.
    Deadline = 1,
    /// Shed at admission (queue full).
    Shed = 2,
    /// The worker panicked on this request.
    Internal = 3,
    /// Flushed during shutdown.
    Shutdown = 4,
}

impl Outcome {
    /// The kebab-case name used in dumps and metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Deadline => "deadline",
            Outcome::Shed => "shed",
            Outcome::Internal => "internal",
            Outcome::Shutdown => "shutdown",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "ok" => Outcome::Ok,
            "deadline" => Outcome::Deadline,
            "shed" => Outcome::Shed,
            "internal" => Outcome::Internal,
            "shutdown" => Outcome::Shutdown,
            _ => return None,
        })
    }
}

/// One completed request's timeline.  `Copy` and heap-free by
/// construction, so recording is a fixed-size memcpy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RequestRecord {
    /// The trace ID stitching this request across subsystems (non-zero
    /// once admitted).
    pub trace_id: u64,
    /// The client-chosen request ID echoed in the response.
    pub request_id: u64,
    /// Clock timestamp at admission, nanoseconds.
    pub admitted_ns: u64,
    /// Per-stage durations in nanoseconds, indexed by [`Stage`].  Only
    /// meaningful where the matching [`stages_recorded`]
    /// (RequestRecord::stages_recorded) bit is set — a stage can
    /// legitimately take 0 ns.
    pub stage_ns: [u64; STAGE_COUNT],
    /// Bitmask of recorded stages (bit `Stage as usize`).
    pub stages_recorded: u8,
    /// Jobs in the batch this request was dispatched with (0 when it
    /// never reached a worker).
    pub batch_size: u32,
    /// Residual binarization levels actually spent on this request
    /// (1 = triage only; the model's full M when escalated).
    pub m_level: u8,
    /// `true` when the cascade escalated this request to the full
    /// confirmation pass.
    pub escalated: bool,
    /// `true` when the server was in triage-only degradation.
    pub degraded: bool,
    /// Remaining deadline budget at dispatch, nanoseconds (negative =
    /// the deadline had already expired).
    pub deadline_slack_ns: i64,
    /// How the request left the system.
    pub outcome: Outcome,
}

impl RequestRecord {
    /// A blank record for `trace_id`/`request_id`, stamped `admitted_ns`.
    pub fn new(trace_id: u64, request_id: u64, admitted_ns: u64) -> Self {
        RequestRecord {
            trace_id,
            request_id,
            admitted_ns,
            ..RequestRecord::default()
        }
    }

    /// Credits `ns` to `stage` and marks it recorded.
    #[inline]
    pub fn mark(&mut self, stage: Stage, ns: u64) {
        self.stage_ns[stage as usize] = ns;
        self.stages_recorded |= 1 << stage as usize;
    }

    /// `true` when `stage` was recorded.
    pub fn has_stage(&self, stage: Stage) -> bool {
        self.stages_recorded & (1 << stage as usize) != 0
    }

    /// `true` when every stage from admission through reply was
    /// recorded — the invariant for requests that completed inference.
    pub fn complete_timeline(&self) -> bool {
        self.stages_recorded == (1 << STAGE_COUNT) - 1
    }

    /// Sum of all recorded stage durations.
    pub fn total_ns(&self) -> u64 {
        self.stage_ns.iter().sum()
    }

    /// Appends this record as one JSON object (no trailing newline).
    pub fn to_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"trace_id\":\"{:016x}\",\"request_id\":{},\"admitted_ns\":{}",
            self.trace_id, self.request_id, self.admitted_ns
        );
        out.push_str(",\"stages\":{");
        let mut first = true;
        for (i, name) in STAGE_NAMES.iter().enumerate() {
            if self.stages_recorded & (1 << i) == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{name}\":{}", self.stage_ns[i]);
        }
        let _ = write!(
            out,
            "}},\"batch_size\":{},\"m_level\":{},\"escalated\":{},\"degraded\":{},\
             \"deadline_slack_ns\":{},\"outcome\":",
            self.batch_size, self.m_level, self.escalated, self.degraded, self.deadline_slack_ns
        );
        push_str_literal(out, self.outcome.name());
        let _ = write!(out, ",\"total_ns\":{}}}", self.total_ns());
    }

    /// Parses one JSONL line produced by [`to_json`](Self::to_json)
    /// back into a record (`total_ns` is derived, not read).  Returns
    /// `None` on anything that does not look like a record line.
    ///
    /// This is a schema-specific reader, not a general JSON parser —
    /// exactly enough for the `trace_dump` analyzer to consume
    /// `/debug/requests` dumps offline.
    pub fn parse_jsonl(line: &str) -> Option<Self> {
        let mut rec = RequestRecord {
            trace_id: u64::from_str_radix(extract_str(line, "trace_id")?, 16).ok()?,
            request_id: extract_num(line, "request_id")?,
            admitted_ns: extract_num(line, "admitted_ns")?,
            batch_size: extract_num(line, "batch_size")? as u32,
            m_level: extract_num(line, "m_level")? as u8,
            escalated: extract_bool(line, "escalated")?,
            degraded: extract_bool(line, "degraded")?,
            deadline_slack_ns: extract_inum(line, "deadline_slack_ns")?,
            outcome: Outcome::from_name(extract_str(line, "outcome")?)?,
            ..RequestRecord::default()
        };
        let stages_start = line.find("\"stages\":{")? + "\"stages\":{".len();
        let stages = &line[stages_start..line[stages_start..].find('}')? + stages_start];
        for (i, name) in STAGE_NAMES.iter().enumerate() {
            if let Some(ns) = extract_num(stages, name) {
                rec.stage_ns[i] = ns;
                rec.stages_recorded |= 1 << i;
            }
        }
        Some(rec)
    }
}

/// `"key":<digits>` → the digits, parsed.
fn extract_num(s: &str, key: &str) -> Option<u64> {
    extract_raw(s, key)?.parse().ok()
}

/// `"key":<maybe-negative digits>` → the number.
fn extract_inum(s: &str, key: &str) -> Option<i64> {
    extract_raw(s, key)?.parse().ok()
}

/// `"key":true|false` → the bool.
fn extract_bool(s: &str, key: &str) -> Option<bool> {
    match extract_raw(s, key)? {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

/// `"key":"value"` → the value (no unescaping: record strings are
/// restricted to hex digits and kebab-case names).
fn extract_str<'a>(s: &'a str, key: &str) -> Option<&'a str> {
    let raw = extract_raw(s, key)?;
    raw.strip_prefix('"')?.strip_suffix('"')
}

/// The raw token following `"key":`, up to the next `,`, `}` — with
/// string values kept intact.
fn extract_raw<'a>(s: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = s.find(&pat)? + pat.len();
    let rest = &s[start..];
    let end = if let Some(inner) = rest.strip_prefix('"') {
        inner.find('"')? + 2
    } else {
        rest.find([',', '}']).unwrap_or(rest.len())
    };
    Some(&rest[..end])
}

struct Ring {
    slots: Vec<RequestRecord>,
    /// Next slot to overwrite.
    head: usize,
    /// Records written so far, saturating at capacity.
    filled: usize,
    /// Total records ever written (diagnostic: `total - filled` have
    /// been overwritten).
    total: u64,
}

/// A fixed-capacity ring buffer of completed [`RequestRecord`]s (see
/// module docs).
pub struct FlightRecorder {
    ring: Mutex<Ring>,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder retaining the most recent `capacity` records.  All
    /// memory is allocated here, up front.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        FlightRecorder {
            ring: Mutex::new(Ring {
                slots: vec![RequestRecord::default(); capacity],
                head: 0,
                filled: 0,
                total: 0,
            }),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        self.ring.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Stores `rec`, overwriting the oldest record once full.  The
    /// critical section is a fixed-size copy — no allocation.
    pub fn record(&self, rec: RequestRecord) {
        let mut ring = self.lock();
        let head = ring.head;
        ring.slots[head] = rec;
        ring.head = (head + 1) % self.capacity;
        ring.filled = (ring.filled + 1).min(self.capacity);
        ring.total += 1;
    }

    /// The most recent record for `trace_id`, if still in the ring.
    /// Copies the record out; no allocation.
    pub fn find(&self, trace_id: u64) -> Option<RequestRecord> {
        if trace_id == 0 {
            return None;
        }
        let ring = self.lock();
        // Scan newest-first so a reused trace ID resolves to its latest
        // flight.
        (1..=ring.filled)
            .map(|i| ring.slots[(ring.head + self.capacity - i) % self.capacity])
            .find(|r| r.trace_id == trace_id)
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.lock().filled
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total records ever written (overwritten ones included).
    pub fn total_recorded(&self) -> u64 {
        self.lock().total
    }

    /// A point-in-time copy of the ring, oldest first.  Allocates (it
    /// is a dump path, not a hot path).
    pub fn snapshot(&self) -> Vec<RequestRecord> {
        let ring = self.lock();
        (0..ring.filled)
            .map(|i| ring.slots[(ring.head + self.capacity - ring.filled + i) % self.capacity])
            .collect()
    }

    /// The ring as JSON lines, oldest first — the `/debug/requests`
    /// body.
    pub fn to_jsonl(&self) -> String {
        let records = self.snapshot();
        let mut out = String::with_capacity(records.len() * 256);
        for rec in &records {
            rec.to_json(&mut out);
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ring = self.lock();
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("filled", &ring.filled)
            .field("total", &ring.total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace_id: u64, outcome: Outcome) -> RequestRecord {
        let mut r = RequestRecord::new(trace_id, trace_id * 10, 1_000 + trace_id);
        r.mark(Stage::Admission, 100);
        r.mark(Stage::QueueWait, 2_000);
        r.mark(Stage::Batch, 50);
        r.mark(Stage::Dispatch, 10);
        r.mark(Stage::Inference, 40_000);
        r.mark(Stage::Reply, 300);
        r.batch_size = 4;
        r.m_level = 2;
        r.escalated = true;
        r.deadline_slack_ns = 5_000_000;
        r.outcome = outcome;
        r
    }

    #[test]
    fn minted_trace_ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn stages_mark_and_complete() {
        let mut r = RequestRecord::new(1, 2, 3);
        assert!(!r.complete_timeline());
        r.mark(Stage::Admission, 0); // 0 ns still counts as recorded
        assert!(r.has_stage(Stage::Admission));
        assert!(!r.has_stage(Stage::Reply));
        for s in [
            Stage::QueueWait,
            Stage::Batch,
            Stage::Dispatch,
            Stage::Inference,
            Stage::Reply,
        ] {
            r.mark(s, 7);
        }
        assert!(r.complete_timeline());
        assert_eq!(r.total_ns(), 35);
    }

    #[test]
    fn ring_overwrites_oldest_and_snapshot_orders_oldest_first() {
        let fr = FlightRecorder::new(3);
        assert!(fr.is_empty());
        for id in 1..=5u64 {
            fr.record(rec(id, Outcome::Ok));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.capacity(), 3);
        assert_eq!(fr.total_recorded(), 5);
        let ids: Vec<u64> = fr.snapshot().iter().map(|r| r.trace_id).collect();
        assert_eq!(ids, vec![3, 4, 5], "oldest two were overwritten");
        assert!(fr.find(1).is_none(), "overwritten record is gone");
        assert_eq!(fr.find(4).unwrap().request_id, 40);
        assert!(fr.find(0).is_none(), "zero is never a valid trace id");
    }

    #[test]
    fn reused_trace_id_resolves_to_the_latest_flight() {
        let fr = FlightRecorder::new(4);
        let mut first = rec(9, Outcome::Deadline);
        first.request_id = 1;
        fr.record(first);
        let mut second = rec(9, Outcome::Ok);
        second.request_id = 2;
        fr.record(second);
        assert_eq!(fr.find(9).unwrap().request_id, 2);
    }

    #[test]
    fn jsonl_round_trips_every_field() {
        let original = rec(0xABCD, Outcome::Internal);
        let mut line = String::new();
        original.to_json(&mut line);
        let parsed = RequestRecord::parse_jsonl(&line).expect("parse back");
        assert_eq!(parsed, original);
    }

    #[test]
    fn jsonl_round_trips_partial_timelines_and_negative_slack() {
        let mut r = RequestRecord::new(7, 70, 500);
        r.mark(Stage::Admission, 120);
        r.mark(Stage::QueueWait, 9_999);
        r.mark(Stage::Reply, 80);
        r.deadline_slack_ns = -1_234;
        r.outcome = Outcome::Deadline;
        let mut line = String::new();
        r.to_json(&mut line);
        let parsed = RequestRecord::parse_jsonl(&line).expect("parse back");
        assert_eq!(parsed, r);
        assert!(!parsed.complete_timeline());
        assert!(parsed.has_stage(Stage::QueueWait));
        assert!(!parsed.has_stage(Stage::Inference));
    }

    #[test]
    fn dump_is_one_line_per_record() {
        let fr = FlightRecorder::new(8);
        for id in 1..=4u64 {
            fr.record(rec(id, Outcome::Ok));
        }
        let dump = fr.to_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 4);
        for (i, line) in lines.iter().enumerate() {
            let parsed = RequestRecord::parse_jsonl(line).expect("each line parses");
            assert_eq!(parsed.trace_id, i as u64 + 1);
        }
    }

    #[test]
    fn garbage_lines_do_not_parse() {
        assert!(RequestRecord::parse_jsonl("").is_none());
        assert!(RequestRecord::parse_jsonl("{}").is_none());
        assert!(RequestRecord::parse_jsonl("not json at all").is_none());
        assert!(RequestRecord::parse_jsonl("{\"trace_id\":\"zz\"}").is_none());
    }

    #[test]
    fn concurrent_recording_loses_no_capacity_invariants() {
        let fr = std::sync::Arc::new(FlightRecorder::new(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let fr = fr.clone();
                s.spawn(move || {
                    for i in 0..200 {
                        fr.record(rec(t * 1000 + i + 1, Outcome::Ok));
                    }
                });
            }
        });
        assert_eq!(fr.len(), 64);
        assert_eq!(fr.total_recorded(), 800);
        let snap = fr.snapshot();
        assert_eq!(snap.len(), 64);
        assert!(snap.iter().all(|r| r.complete_timeline()));
    }
}
