//! A minimal JSON *writer* — just enough to emit JSONL trace records
//! and metric snapshots without an external serialization crate (the
//! build environment is fully offline; see the workspace `compat/`
//! philosophy).  There is deliberately no parser here: consumers of the
//! emitted files bring their own.

use std::fmt::Write as _;

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number.  JSON has no NaN/Infinity, so
/// non-finite values become `null` (the consumer treats a null sample
/// as "measurement unavailable").
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &str) -> String {
        let mut out = String::new();
        push_str_literal(&mut out, s);
        out
    }

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        assert_eq!(lit("plain"), "\"plain\"");
        assert_eq!(lit("a\"b"), "\"a\\\"b\"");
        assert_eq!(lit("a\\b"), "\"a\\\\b\"");
        assert_eq!(lit("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(lit("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let mut out = String::new();
        push_f64(&mut out, 1.5);
        assert_eq!(out, "1.5");
        out.clear();
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        out.clear();
        push_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null");
    }
}
