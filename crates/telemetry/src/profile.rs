//! Fixed-slot accumulating profilers for hot paths.
//!
//! A [`SlotProfiler`] is the allocation-free half of per-layer
//! profiling: it is constructed once (naming one slot per layer/step),
//! then the hot loop calls [`begin`](SlotProfiler::begin) /
//! [`record_since`](SlotProfiler::record_since) around each step —
//! plain `u64` arithmetic against a monotonic clock, no atomics, no
//! heap.  Per-worker profilers from a parallel run are combined with
//! [`merge`](SlotProfiler::merge), and the totals are published to a
//! [`MetricsRegistry`](crate::metrics::MetricsRegistry) with
//! [`export_to`](SlotProfiler::export_to).

use crate::clock::{Clock, MonotonicClock};
use crate::metrics::MetricsRegistry;
use std::sync::Arc;

/// Aggregated timing for one slot, as reported by
/// [`SlotProfiler::report`].
#[derive(Debug, Clone, PartialEq)]
pub struct SlotTiming {
    /// Slot (layer/step) name.
    pub name: String,
    /// Times the slot was recorded.
    pub calls: u64,
    /// Accumulated nanoseconds across all calls.
    pub total_ns: u64,
}

impl SlotTiming {
    /// Mean nanoseconds per call (0 when never called).
    pub fn mean_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.calls as f64
        }
    }
}

/// A fixed set of named timing accumulators (see module docs).
#[derive(Debug, Clone)]
pub struct SlotProfiler {
    names: Arc<[String]>,
    total_ns: Vec<u64>,
    calls: Vec<u64>,
    clock: Arc<dyn Clock>,
}

impl SlotProfiler {
    /// A profiler over `names`, timed by the real monotonic clock.
    pub fn new(names: Vec<String>) -> Self {
        Self::with_clock(names, Arc::new(MonotonicClock))
    }

    /// A profiler with an explicit clock (tests use
    /// [`MockClock`](crate::clock::MockClock) for exact assertions).
    pub fn with_clock(names: Vec<String>, clock: Arc<dyn Clock>) -> Self {
        let n = names.len();
        SlotProfiler {
            names: names.into(),
            total_ns: vec![0; n],
            calls: vec![0; n],
            clock,
        }
    }

    /// Number of slots.
    pub fn slot_count(&self) -> usize {
        self.names.len()
    }

    /// Slot names in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Current clock reading — pass the result to
    /// [`record_since`](SlotProfiler::record_since) after the timed
    /// section.
    #[inline]
    pub fn begin(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Credits the time since `start_ns` to `slot`.
    ///
    /// # Panics
    ///
    /// Panics when `slot` is out of range.
    #[inline]
    pub fn record_since(&mut self, slot: usize, start_ns: u64) {
        let now = self.clock.now_ns();
        self.add(slot, now.saturating_sub(start_ns));
    }

    /// Credits `ns` nanoseconds to `slot` directly.
    ///
    /// # Panics
    ///
    /// Panics when `slot` is out of range.
    #[inline]
    pub fn add(&mut self, slot: usize, ns: u64) {
        self.total_ns[slot] += ns;
        self.calls[slot] += 1;
    }

    /// Folds another profiler's accumulators into this one (the way a
    /// parallel run combines per-worker profilers).
    ///
    /// # Panics
    ///
    /// Panics when the two profilers have different slot names.
    pub fn merge(&mut self, other: &SlotProfiler) {
        assert_eq!(
            self.names, other.names,
            "cannot merge profilers with different slots"
        );
        for i in 0..self.total_ns.len() {
            self.total_ns[i] += other.total_ns[i];
            self.calls[i] += other.calls[i];
        }
    }

    /// Resets every accumulator to zero (names stay).
    pub fn reset(&mut self) {
        self.total_ns.iter_mut().for_each(|v| *v = 0);
        self.calls.iter_mut().for_each(|v| *v = 0);
    }

    /// Per-slot totals in index order.
    pub fn report(&self) -> Vec<SlotTiming> {
        self.names
            .iter()
            .zip(self.total_ns.iter().zip(&self.calls))
            .map(|(name, (&total_ns, &calls))| SlotTiming {
                name: name.clone(),
                calls,
                total_ns,
            })
            .collect()
    }

    /// Sum of all slots' accumulated nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.iter().sum()
    }

    /// Publishes the accumulated totals into `registry` as two labelled
    /// counter families, `{prefix}_ns_total{{{label}="slot"}}` and
    /// `{prefix}_calls_total{{{label}="slot"}}`.
    pub fn export_to(&self, registry: &MetricsRegistry, prefix: &str, label: &str) {
        let ns_name = format!("{prefix}_ns_total");
        let calls_name = format!("{prefix}_calls_total");
        for (i, name) in self.names.iter().enumerate() {
            registry
                .counter_with(&ns_name, &[(label, name)])
                .add(self.total_ns[i]);
            registry
                .counter_with(&calls_name, &[(label, name)])
                .add(self.calls[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("slot{i}")).collect()
    }

    #[test]
    fn records_exact_durations_under_mock_clock() {
        let clock = Arc::new(MockClock::new());
        let mut prof = SlotProfiler::with_clock(names(2), clock.clone());
        let t = prof.begin();
        clock.advance(100);
        prof.record_since(0, t);
        let t = prof.begin();
        clock.advance(40);
        prof.record_since(1, t);
        prof.add(1, 10);
        let report = prof.report();
        assert_eq!(report[0].total_ns, 100);
        assert_eq!(report[0].calls, 1);
        assert_eq!(report[1].total_ns, 50);
        assert_eq!(report[1].calls, 2);
        assert_eq!(report[1].mean_ns(), 25.0);
        assert_eq!(prof.total_ns(), 150);
    }

    #[test]
    fn merge_sums_and_reset_clears() {
        let mut a = SlotProfiler::new(names(2));
        let mut b = SlotProfiler::new(names(2));
        a.add(0, 5);
        b.add(0, 7);
        b.add(1, 1);
        a.merge(&b);
        assert_eq!(a.report()[0].total_ns, 12);
        assert_eq!(a.report()[0].calls, 2);
        assert_eq!(a.report()[1].total_ns, 1);
        a.reset();
        assert_eq!(a.total_ns(), 0);
        assert_eq!(a.report()[0].calls, 0);
    }

    #[test]
    #[should_panic(expected = "different slots")]
    fn merge_rejects_mismatched_slots() {
        let mut a = SlotProfiler::new(names(2));
        a.merge(&SlotProfiler::new(names(3)));
    }

    #[test]
    fn export_publishes_labelled_counters() {
        let mut prof = SlotProfiler::new(vec!["stem".into(), "head".into()]);
        prof.add(0, 100);
        prof.add(0, 100);
        prof.add(1, 30);
        let reg = MetricsRegistry::new();
        prof.export_to(&reg, "inference_layer", "layer");
        assert_eq!(
            reg.counter_with("inference_layer_ns_total", &[("layer", "stem")])
                .get(),
            200
        );
        assert_eq!(
            reg.counter_with("inference_layer_calls_total", &[("layer", "stem")])
                .get(),
            2
        );
        assert_eq!(
            reg.counter_with("inference_layer_ns_total", &[("layer", "head")])
                .get(),
            30
        );
    }
}
