//! Rolling-window metrics: a ring of time buckets over a fixed-bucket
//! histogram, answering "what was p99 over the *last N seconds*"
//! alongside the cumulative histograms' "since the process started".
//!
//! A [`WindowedHistogram`] divides time into `slices` contiguous
//! spans of `slice_ns` each.  Every observation lands in the slice
//! covering "now"; a slice whose span has rotated out of the window is
//! reset in place and reused — so after construction the structure
//! never allocates, and the window slides with at most one slice of
//! quantisation error.  [`snapshot`](WindowedHistogram::snapshot)
//! merges the live slices into an ordinary
//! [`HistogramSnapshot`](crate::metrics::HistogramSnapshot), so all
//! the quantile math is shared with the cumulative path.
//!
//! Time comes from a [`Clock`], so tests drive the window with a
//! [`MockClock`](crate::clock::MockClock) and assert exact expiry
//! instead of sleeping.

use crate::clock::{Clock, MonotonicClock};
use crate::metrics::HistogramSnapshot;
use std::sync::{Arc, Mutex};

struct Slice {
    /// Which absolute time slice (now_ns / slice_ns) this data belongs
    /// to; data from an older epoch is expired, not merged.
    epoch: u64,
    counts: Vec<u64>,
    sum: f64,
    total: u64,
}

struct State {
    slices: Vec<Slice>,
}

/// A sliding-window histogram (see module docs).
pub struct WindowedHistogram {
    bounds: Vec<f64>,
    slice_ns: u64,
    n_slices: usize,
    state: Mutex<State>,
    clock: Arc<dyn Clock>,
}

impl WindowedHistogram {
    /// A window of `slices × slice_ns` nanoseconds over `bounds`
    /// (strictly increasing finite bucket bounds, +∞ implied), timed by
    /// the real monotonic clock.
    ///
    /// # Panics
    ///
    /// Panics when `slices` or `slice_ns` is zero, or bounds are not
    /// strictly increasing.
    pub fn new(slices: usize, slice_ns: u64, bounds: &[f64]) -> Self {
        Self::with_clock(slices, slice_ns, bounds, Arc::new(MonotonicClock))
    }

    /// As [`new`](Self::new), with an explicit clock.
    pub fn with_clock(slices: usize, slice_ns: u64, bounds: &[f64], clock: Arc<dyn Clock>) -> Self {
        assert!(slices > 0, "window needs at least one slice");
        assert!(slice_ns > 0, "slice duration must be positive");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        WindowedHistogram {
            bounds: bounds.to_vec(),
            slice_ns,
            n_slices: slices,
            state: Mutex::new(State {
                slices: (0..slices)
                    .map(|_| Slice {
                        epoch: u64::MAX,
                        counts: vec![0; bounds.len() + 1],
                        sum: 0.0,
                        total: 0,
                    })
                    .collect(),
            }),
            clock,
        }
    }

    /// The window length in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.slice_ns * self.n_slices as u64
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Records one observation at the clock's current time.  Non-finite
    /// values are dropped, like the cumulative histogram.  Allocation-
    /// free: the slice ring is fixed at construction.
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let epoch = self.clock.now_ns() / self.slice_ns;
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        let mut st = self.lock();
        let slot = &mut st.slices[(epoch % self.n_slices as u64) as usize];
        if slot.epoch != epoch {
            // The slice's previous span rotated out of the window:
            // reset in place and reuse.
            slot.counts.iter_mut().for_each(|c| *c = 0);
            slot.sum = 0.0;
            slot.total = 0;
            slot.epoch = epoch;
        }
        slot.counts[idx] += 1;
        slot.sum += v;
        slot.total += 1;
    }

    /// Merges the slices still inside the window into a point-in-time
    /// [`HistogramSnapshot`] (allocates the snapshot; a dump/scrape
    /// path).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let now_epoch = self.clock.now_ns() / self.slice_ns;
        let oldest_live = now_epoch.saturating_sub(self.n_slices as u64 - 1);
        let st = self.lock();
        let mut counts = vec![0u64; self.bounds.len() + 1];
        let mut sum = 0.0;
        let mut count = 0u64;
        for slice in &st.slices {
            if slice.epoch < oldest_live || slice.epoch > now_epoch {
                continue;
            }
            for (acc, &c) in counts.iter_mut().zip(&slice.counts) {
                *acc += c;
            }
            sum += slice.sum;
            count += slice.total;
        }
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts,
            count,
            sum,
        }
    }

    /// Accumulates the live per-bucket counts into `acc` (which must
    /// hold `bounds.len() + 1` slots) without allocating, and returns
    /// the total observation count inside the window.  The
    /// allocation-free sibling of [`snapshot`](Self::snapshot) for
    /// hot-path consumers like the drift monitor.
    ///
    /// # Panics
    ///
    /// Panics when `acc` has the wrong length.
    pub fn accumulate_counts(&self, acc: &mut [u64]) -> u64 {
        assert_eq!(acc.len(), self.bounds.len() + 1, "accumulator shape");
        let now_epoch = self.clock.now_ns() / self.slice_ns;
        let oldest_live = now_epoch.saturating_sub(self.n_slices as u64 - 1);
        let st = self.lock();
        let mut count = 0u64;
        for slice in &st.slices {
            if slice.epoch < oldest_live || slice.epoch > now_epoch {
                continue;
            }
            for (a, &c) in acc.iter_mut().zip(&slice.counts) {
                *a += c;
            }
            count += slice.total;
        }
        count
    }

    /// Observations currently inside the window.
    pub fn count(&self) -> u64 {
        let now_epoch = self.clock.now_ns() / self.slice_ns;
        let oldest_live = now_epoch.saturating_sub(self.n_slices as u64 - 1);
        let st = self.lock();
        st.slices
            .iter()
            .filter(|s| s.epoch >= oldest_live && s.epoch <= now_epoch)
            .map(|s| s.total)
            .sum()
    }

    /// Observations per second over the window span.
    pub fn rate_per_sec(&self) -> f64 {
        self.count() as f64 * 1e9 / self.window_ns() as f64
    }
}

impl std::fmt::Debug for WindowedHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedHistogram")
            .field("slices", &self.n_slices)
            .field("slice_ns", &self.slice_ns)
            .field("count", &self.count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;

    const SLICE: u64 = 1_000_000_000; // 1 s slices

    fn windowed(clock: Arc<MockClock>) -> WindowedHistogram {
        WindowedHistogram::with_clock(4, SLICE, &[10.0, 100.0, 1000.0], clock)
    }

    #[test]
    fn empty_window_snapshot_is_empty() {
        let clock = Arc::new(MockClock::new());
        let w = windowed(clock);
        let snap = w.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(0.99), None);
        assert_eq!(w.count(), 0);
        assert_eq!(w.rate_per_sec(), 0.0);
    }

    #[test]
    fn observations_expire_after_the_window() {
        let clock = Arc::new(MockClock::new());
        let w = windowed(clock.clone());
        w.observe(5.0);
        w.observe(50.0);
        assert_eq!(w.count(), 2);
        // Still inside the 4 s window after 3 s...
        clock.advance(3 * SLICE);
        assert_eq!(w.count(), 2);
        // ...gone once the window has fully slid past them.
        clock.advance(2 * SLICE);
        assert_eq!(w.count(), 0);
        assert_eq!(w.snapshot().count, 0);
    }

    #[test]
    fn window_slides_not_resets() {
        let clock = Arc::new(MockClock::new());
        let w = windowed(clock.clone());
        // One observation per second for 6 s: the window must always
        // hold the last 4.
        for i in 0..6 {
            w.observe(i as f64);
            if i < 5 {
                clock.advance(SLICE);
            }
        }
        assert_eq!(w.count(), 4, "only the last 4 slices are live");
        let snap = w.snapshot();
        assert_eq!(snap.sum, 2.0 + 3.0 + 4.0 + 5.0);
    }

    #[test]
    fn slice_reuse_resets_stale_data() {
        let clock = Arc::new(MockClock::new());
        let w = windowed(clock.clone());
        w.observe(5.0);
        // Advance exactly one full ring revolution: the new epoch maps
        // onto the same slot, whose stale contents must not leak in.
        clock.advance(4 * SLICE);
        w.observe(500.0);
        let snap = w.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 500.0);
    }

    #[test]
    fn quantiles_come_from_live_slices_only() {
        let clock = Arc::new(MockClock::new());
        let w = windowed(clock.clone());
        for _ in 0..100 {
            w.observe(5.0);
        }
        clock.advance(5 * SLICE); // all of those expire
        for _ in 0..10 {
            w.observe(500.0);
        }
        let p50 = w.snapshot().quantile(0.50).unwrap();
        assert!(
            (100.0..=1000.0).contains(&p50),
            "p50 {p50} reflects the live distribution, not the expired one"
        );
    }

    #[test]
    fn rate_reflects_window_count() {
        let clock = Arc::new(MockClock::new());
        let w = windowed(clock); // 4 s window
        for _ in 0..20 {
            w.observe(1.0);
        }
        assert_eq!(w.rate_per_sec(), 5.0, "20 observations / 4 s window");
    }

    #[test]
    fn non_finite_observations_are_dropped() {
        let clock = Arc::new(MockClock::new());
        let w = windowed(clock);
        w.observe(f64::NAN);
        w.observe(f64::INFINITY);
        assert_eq!(w.count(), 0);
    }

    #[test]
    fn concurrent_observers_lose_nothing() {
        let clock = Arc::new(MockClock::new());
        let w = Arc::new(windowed(clock));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let w = w.clone();
                s.spawn(move || {
                    for _ in 0..500 {
                        w.observe(50.0);
                    }
                });
            }
        });
        assert_eq!(w.count(), 4000);
        assert_eq!(w.snapshot().sum, 200_000.0);
    }
}
