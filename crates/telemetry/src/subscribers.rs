//! Stock [`Subscriber`] implementations: a JSONL file writer, a pretty
//! stderr printer, and an in-memory collector for tests.

use crate::json::{push_f64, push_str_literal};
use crate::trace::{EventRecord, Field, SpanEndRecord, SpanStartRecord, Subscriber, Value};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

fn push_value_json(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => push_f64(out, *f),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Str(s) => push_str_literal(out, s),
    }
}

fn push_fields_json(out: &mut String, fields: &[Field]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_literal(out, k);
        out.push(':');
        push_value_json(out, v);
    }
    out.push('}');
}

/// Writes one JSON object per line to a file: `{"type":"event"|
/// "span_start"|"span_end", "ts_ns":…, …}`.  Lines are buffered;
/// [`flush`](JsonlSubscriber::flush) or drop forces them out.
#[derive(Debug)]
pub struct JsonlSubscriber {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSubscriber {
    /// Creates (truncating) the file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be
    /// created.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(JsonlSubscriber {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&self) {
        let mut out = self.out.lock().unwrap_or_else(|p| p.into_inner());
        let _ = out.flush();
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().unwrap_or_else(|p| p.into_inner());
        let _ = writeln!(out, "{line}");
    }
}

impl Drop for JsonlSubscriber {
    fn drop(&mut self) {
        self.flush();
    }
}

impl Subscriber for JsonlSubscriber {
    fn on_event(&self, event: &EventRecord<'_>) {
        let mut line = String::new();
        let _ = write!(
            line,
            "{{\"type\":\"event\",\"ts_ns\":{},\"name\":",
            event.ts_ns
        );
        push_str_literal(&mut line, event.name);
        match event.span {
            Some(id) => {
                let _ = write!(line, ",\"span\":{id}");
            }
            None => line.push_str(",\"span\":null"),
        }
        line.push_str(",\"fields\":");
        push_fields_json(&mut line, event.fields);
        line.push('}');
        self.write_line(&line);
    }

    fn on_span_start(&self, span: &SpanStartRecord<'_>) {
        let mut line = String::new();
        let _ = write!(
            line,
            "{{\"type\":\"span_start\",\"ts_ns\":{},\"id\":{},\"parent\":",
            span.ts_ns, span.id
        );
        match span.parent {
            Some(p) => {
                let _ = write!(line, "{p}");
            }
            None => line.push_str("null"),
        }
        line.push_str(",\"name\":");
        push_str_literal(&mut line, span.name);
        line.push_str(",\"fields\":");
        push_fields_json(&mut line, span.fields);
        line.push('}');
        self.write_line(&line);
    }

    fn on_span_end(&self, span: &SpanEndRecord<'_>) {
        let mut line = String::new();
        let _ = write!(
            line,
            "{{\"type\":\"span_end\",\"ts_ns\":{},\"id\":{},\"name\":",
            span.ts_ns, span.id
        );
        push_str_literal(&mut line, span.name);
        let _ = write!(line, ",\"duration_ns\":{}}}", span.duration_ns);
        self.write_line(&line);
    }
}

fn push_value_pretty(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => {
            let _ = write!(out, "{f:.4}");
        }
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Str(s) => {
            let _ = write!(out, "{s}");
        }
    }
}

fn pretty_fields(fields: &[Field]) -> String {
    let mut out = String::new();
    for (k, v) in fields {
        let _ = write!(out, " {k}=");
        push_value_pretty(&mut out, v);
    }
    out
}

/// Human-readable one-line-per-record output on stderr, e.g.
/// `[telemetry] train.epoch epoch=3 loss=0.4210 lr=0.0200`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrSubscriber;

impl Subscriber for StderrSubscriber {
    fn on_event(&self, event: &EventRecord<'_>) {
        eprintln!("[telemetry] {}{}", event.name, pretty_fields(event.fields));
    }

    fn on_span_start(&self, span: &SpanStartRecord<'_>) {
        eprintln!(
            "[telemetry] {} started{}",
            span.name,
            pretty_fields(span.fields)
        );
    }

    fn on_span_end(&self, span: &SpanEndRecord<'_>) {
        eprintln!(
            "[telemetry] {} finished in {:.3} ms",
            span.name,
            span.duration_ns as f64 / 1e6
        );
    }
}

/// One owned trace record captured by a [`CollectingSubscriber`].
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// An event with its enclosing span id and fields.
    Event {
        /// Event name.
        name: String,
        /// Enclosing span id on the emitting thread.
        span: Option<u64>,
        /// Owned copies of the fields.
        fields: Vec<(String, Value)>,
    },
    /// A span opened.
    SpanStart {
        /// Span id.
        id: u64,
        /// Parent span id on the opening thread.
        parent: Option<u64>,
        /// Span name.
        name: String,
    },
    /// A span closed.
    SpanEnd {
        /// Span id.
        id: u64,
        /// Span name.
        name: String,
        /// Measured duration.
        duration_ns: u64,
    },
}

/// Buffers every record in memory — the assertion surface for tests.
#[derive(Debug, Default)]
pub struct CollectingSubscriber {
    records: Mutex<Vec<Record>>,
}

impl CollectingSubscriber {
    /// An empty collector.
    pub fn new() -> Self {
        CollectingSubscriber::default()
    }

    /// Copies out everything captured so far.
    pub fn records(&self) -> Vec<Record> {
        self.records
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    fn push(&self, r: Record) {
        self.records
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(r);
    }
}

impl Subscriber for CollectingSubscriber {
    fn on_event(&self, event: &EventRecord<'_>) {
        self.push(Record::Event {
            name: event.name.to_string(),
            span: event.span,
            fields: event
                .fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    fn on_span_start(&self, span: &SpanStartRecord<'_>) {
        self.push(Record::SpanStart {
            id: span.id,
            parent: span.parent,
            name: span.name.to_string(),
        });
    }

    fn on_span_end(&self, span: &SpanEndRecord<'_>) {
        self.push(Record::SpanEnd {
            id: span.id,
            name: span.name.to_string(),
            duration_ns: span.duration_ns,
        });
    }
}
