//! A lightweight span/event tracing facade.
//!
//! The [`span!`](crate::span!) and [`event!`](crate::event!) macros are
//! the producer API: they cost one relaxed atomic load when no
//! subscriber is installed, and dispatch structured records (name plus
//! typed key/value fields) to the global [`Subscriber`] when one is.
//! Span nesting is tracked per thread, so records carry parent links
//! that reconstruct the call tree even under parallel inference.
//!
//! ```
//! use hotspot_telemetry::{event, span};
//!
//! // With no subscriber installed both lines are almost free.
//! let _guard = span!("train.epoch", epoch = 3usize);
//! event!("train.rollback", epoch = 3usize, loss = f64::NAN);
//! ```
//!
//! Subscribers are installed process-wide with [`set_subscriber`]; see
//! [`crate::subscribers`] for the JSONL and stderr implementations.

use crate::clock::{Clock, MonotonicClock};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One typed field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (also used for `usize`).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (also used for `f32`; may be non-finite).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Owned string.
    Str(String),
}

macro_rules! value_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::$variant(v as $conv)
            }
        })*
    };
}

value_from!(
    u64 => U64 as u64,
    u32 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64,
    f32 => F64 as f64,
);

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A named field: `(key, value)`.
pub type Field = (&'static str, Value);

/// An instantaneous event record.
#[derive(Debug)]
pub struct EventRecord<'a> {
    /// Event name, dotted-path style (`"train.rollback"`).
    pub name: &'a str,
    /// Attached fields.
    pub fields: &'a [Field],
    /// Id of the enclosing span on this thread, if any.
    pub span: Option<u64>,
    /// Monotonic timestamp (ns since the process clock anchor).
    pub ts_ns: u64,
}

/// A span-opening record.
#[derive(Debug)]
pub struct SpanStartRecord<'a> {
    /// Process-unique span id.
    pub id: u64,
    /// Id of the parent span on this thread, if any.
    pub parent: Option<u64>,
    /// Span name.
    pub name: &'a str,
    /// Fields captured at open time.
    pub fields: &'a [Field],
    /// Monotonic timestamp of the open.
    pub ts_ns: u64,
}

/// A span-closing record.
#[derive(Debug)]
pub struct SpanEndRecord<'a> {
    /// The id from the matching [`SpanStartRecord`].
    pub id: u64,
    /// Span name (repeated so end records are self-describing).
    pub name: &'a str,
    /// Wall-clock duration between open and close.
    pub duration_ns: u64,
    /// Monotonic timestamp of the close.
    pub ts_ns: u64,
}

/// A sink for trace records.  Implementations must be thread-safe:
/// records arrive concurrently from every thread that traces.
pub trait Subscriber: Send + Sync {
    /// An instantaneous event fired.
    fn on_event(&self, event: &EventRecord<'_>);
    /// A span opened.
    fn on_span_start(&self, span: &SpanStartRecord<'_>);
    /// A span closed.
    fn on_span_end(&self, span: &SpanEndRecord<'_>);
}

/// Fast-path flag: `true` iff a global subscriber is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Monotonic span-id source (0 is reserved for "no span").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

fn subscriber_slot() -> &'static RwLock<Option<Arc<dyn Subscriber>>> {
    static SLOT: std::sync::OnceLock<RwLock<Option<Arc<dyn Subscriber>>>> =
        std::sync::OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

thread_local! {
    /// Ids of the spans currently open on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Installs `sub` as the process-wide subscriber, replacing any
/// previous one.  Returns the previous subscriber, if any, so tests can
/// restore it.
pub fn set_subscriber(sub: Arc<dyn Subscriber>) -> Option<Arc<dyn Subscriber>> {
    let mut slot = subscriber_slot().write().unwrap_or_else(|p| p.into_inner());
    let old = slot.replace(sub);
    ENABLED.store(true, Ordering::Release);
    old
}

/// Removes the process-wide subscriber, returning it.
pub fn clear_subscriber() -> Option<Arc<dyn Subscriber>> {
    let mut slot = subscriber_slot().write().unwrap_or_else(|p| p.into_inner());
    ENABLED.store(false, Ordering::Release);
    slot.take()
}

/// `true` when a subscriber is installed — the macros' fast-path check.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

fn with_subscriber(f: impl FnOnce(&dyn Subscriber)) {
    let slot = subscriber_slot().read().unwrap_or_else(|p| p.into_inner());
    if let Some(sub) = slot.as_deref() {
        f(sub);
    }
}

/// Innermost open span id on this thread.
pub fn current_span() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// Dispatches an event to the global subscriber (no-op when none is
/// installed).  Prefer the [`event!`](crate::event!) macro, which
/// skips field construction entirely on the disabled path.
pub fn dispatch_event(name: &str, fields: &[Field]) {
    if !enabled() {
        return;
    }
    let record = EventRecord {
        name,
        fields,
        span: current_span(),
        ts_ns: MonotonicClock.now_ns(),
    };
    with_subscriber(|s| s.on_event(&record));
}

/// Dispatches an event to one explicit subscriber, bypassing the
/// global registration.  Used for per-run sinks (e.g. verbose training
/// progress to stderr) that must not perturb process-wide state.
pub fn dispatch_event_to(sub: &dyn Subscriber, name: &str, fields: &[Field]) {
    sub.on_event(&EventRecord {
        name,
        fields,
        span: current_span(),
        ts_ns: MonotonicClock.now_ns(),
    });
}

/// Opens a span: emits the start record and returns a guard that emits
/// the end record (with duration) when dropped.  Prefer the
/// [`span!`](crate::span!) macro.
pub fn span(name: &'static str, fields: &[Field]) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = current_span();
    let start_ns = MonotonicClock.now_ns();
    let record = SpanStartRecord {
        id,
        parent,
        name,
        fields,
        ts_ns: start_ns,
    };
    with_subscriber(|s| s.on_span_start(&record));
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    SpanGuard {
        id: Some(id),
        name,
        start_ns,
        // Thread-locals pin the guard to its opening thread.
        _not_send: std::marker::PhantomData,
    }
}

/// Closes its span on drop.  Must be dropped on the thread that opened
/// it (enforced by the type being `!Send`).
#[must_use = "dropping the guard immediately closes the span"]
#[derive(Debug)]
pub struct SpanGuard {
    id: Option<u64>,
    name: &'static str,
    start_ns: u64,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl SpanGuard {
    /// An inert guard for the no-subscriber path: carries no id and
    /// emits nothing on drop.
    pub fn disabled() -> Self {
        SpanGuard {
            id: None,
            name: "",
            start_ns: 0,
            _not_send: std::marker::PhantomData,
        }
    }

    /// The span id, or `None` for an inert guard.
    pub fn id(&self) -> Option<u64> {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards are dropped in reverse open order (they are owned
            // values on the stack), so the innermost id is ours; be
            // defensive about leaked/forgotten guards anyway.
            if let Some(pos) = stack.iter().rposition(|&sid| sid == id) {
                stack.truncate(pos);
            }
        });
        let end_ns = MonotonicClock.now_ns();
        let record = SpanEndRecord {
            id,
            name: self.name,
            duration_ns: end_ns.saturating_sub(self.start_ns),
            ts_ns: end_ns,
        };
        with_subscriber(|s| s.on_span_end(&record));
    }
}

/// Emits a structured event through the global subscriber.
///
/// `event!("name", key = value, ...)` — keys become field names, values
/// anything with `Into<`[`Value`]`>`.  Costs one atomic load when no
/// subscriber is installed (fields are not even constructed).
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::dispatch_event(
                $name,
                &[$((stringify!($key), $crate::trace::Value::from($val))),*],
            );
        }
    };
}

/// Opens a span and returns its [`SpanGuard`]; the span closes (and
/// reports its duration) when the guard drops.
///
/// `let _g = span!("name", key = value, ...);`
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::span(
                $name,
                &[$((stringify!($key), $crate::trace::Value::from($val))),*],
            )
        } else {
            $crate::trace::SpanGuard::disabled()
        }
    };
}
