//! Prediction-distribution drift monitoring (ROADMAP item 5's
//! continuous-learning trigger).
//!
//! A [`DriftMonitor`] watches two signals per classified clip: the
//! prediction margin (how far from the decision boundary the model
//! landed) and whether the cascade escalated the clip from M=1 triage
//! to full confirmation.  At model load — and again after every
//! successful hot-swap, via [`rebaseline`](DriftMonitor::rebaseline) —
//! it *collects* the first `baseline_samples` observations into a
//! frozen baseline histogram.  After that it *monitors*: live
//! observations land in a [`WindowedHistogram`], and the windowed
//! distribution is compared against the baseline by total-variation
//! distance, plus the absolute shift in escalation rate.  When either
//! crosses its threshold the monitor emits one typed `drift.detected`
//! event (latched — no event storm; [`rebaseline`] re-arms it) and
//! keeps a divergence gauge current for the scrape.
//!
//! The clock is injected, so the deterministic test drives the whole
//! collect → monitor → detect cycle with a
//! [`MockClock`](crate::clock::MockClock).

use crate::clock::{Clock, MonotonicClock};
use crate::metrics::Gauge;
use crate::trace;
use crate::window::WindowedHistogram;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Tuning knobs for [`DriftMonitor`].
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Margin-histogram bucket bounds (strictly increasing, +∞
    /// implied).  Margins are observed as `|margin|` — drift toward
    /// the decision boundary and drift away from it both move mass
    /// between buckets.
    pub margin_bounds: Vec<f64>,
    /// Observations collected before the baseline freezes.
    pub baseline_samples: u64,
    /// Minimum live observations inside the window before any
    /// comparison runs (avoids declaring drift off a handful of clips).
    pub min_window_samples: u64,
    /// Total-variation distance (in `[0, 1]`) between the baseline and
    /// windowed margin distributions that counts as drift.
    pub margin_tvd_threshold: f64,
    /// Absolute escalation-rate shift (in `[0, 1]`) that counts as
    /// drift.
    pub escalation_delta_threshold: f64,
    /// Number of window slices and their duration (see
    /// [`WindowedHistogram`]).
    pub window_slices: usize,
    pub slice_ns: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            // |margin| buckets: near-boundary, uncertain, comfortable,
            // confident; a shifted workload moves mass across these.
            margin_bounds: vec![0.05, 0.1, 0.2, 0.4, 0.8, 1.6],
            baseline_samples: 256,
            min_window_samples: 64,
            margin_tvd_threshold: 0.25,
            escalation_delta_threshold: 0.20,
            window_slices: 6,
            slice_ns: 10_000_000_000, // 6 × 10 s = 1 min window
        }
    }
}

/// The frozen reference distribution captured at model load/swap.
#[derive(Debug, Clone)]
struct Baseline {
    counts: Vec<u64>,
    total: u64,
    escalated: u64,
}

impl Baseline {
    fn escalation_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.escalated as f64 / self.total as f64
        }
    }
}

/// A point-in-time divergence measurement (also the payload of the
/// `drift.detected` event).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftReport {
    /// Total-variation distance between baseline and windowed margin
    /// distributions, in `[0, 1]`.
    pub margin_tvd: f64,
    /// `|windowed escalation rate − baseline escalation rate|`.
    pub escalation_delta: f64,
    /// Observations backing the baseline side.
    pub baseline_samples: u64,
    /// Observations backing the windowed side.
    pub window_samples: u64,
}

impl DriftReport {
    /// The single scalar exported on the gauge: the worse of the two
    /// normalized divergence signals.
    pub fn divergence(&self) -> f64 {
        self.margin_tvd.max(self.escalation_delta)
    }
}

/// Watches margin / escalation distributions for shift against a
/// baseline (see module docs).  Thread-safe; one per [`ModelSlot`]
/// generation lineage, re-armed on swap via [`rebaseline`].
///
/// [`ModelSlot`]: ../../hotspot_bnn/struct.ModelSlot.html
/// [`rebaseline`]: Self::rebaseline
pub struct DriftMonitor {
    cfg: DriftConfig,
    clock: Arc<dyn Clock>,
    /// `None` while collecting, `Some` once frozen.
    baseline: Mutex<Option<Baseline>>,
    /// Accumulates toward the baseline during the collect phase.
    collecting: Mutex<Baseline>,
    live_margins: WindowedHistogram,
    /// Escalations only; windowed rate = this count / live total.
    live_escalations: WindowedHistogram,
    latched: AtomicBool,
    divergence_gauge: Mutex<Option<Gauge>>,
    /// Preallocated bucket accumulator so [`compare`](Self::compare)
    /// stays allocation-free on the per-request path.
    scratch: Mutex<Vec<u64>>,
}

impl DriftMonitor {
    /// A monitor on the real monotonic clock.
    pub fn new(cfg: DriftConfig) -> Self {
        Self::with_clock(cfg, Arc::new(MonotonicClock))
    }

    /// As [`new`](Self::new), with an explicit clock (tests).
    ///
    /// # Panics
    ///
    /// Panics when the config's bounds/window parameters are invalid
    /// (propagated from [`WindowedHistogram`]).
    pub fn with_clock(cfg: DriftConfig, clock: Arc<dyn Clock>) -> Self {
        assert!(cfg.baseline_samples > 0, "baseline needs samples");
        let live_margins = WindowedHistogram::with_clock(
            cfg.window_slices,
            cfg.slice_ns,
            &cfg.margin_bounds,
            clock.clone(),
        );
        let live_escalations =
            WindowedHistogram::with_clock(cfg.window_slices, cfg.slice_ns, &[1.0], clock.clone());
        let n_buckets = cfg.margin_bounds.len() + 1;
        DriftMonitor {
            cfg,
            clock,
            baseline: Mutex::new(None),
            collecting: Mutex::new(Baseline {
                counts: vec![0; n_buckets],
                total: 0,
                escalated: 0,
            }),
            live_margins,
            live_escalations,
            latched: AtomicBool::new(false),
            divergence_gauge: Mutex::new(None),
            scratch: Mutex::new(vec![0; n_buckets]),
        }
    }

    /// Binds the gauge kept current with [`DriftReport::divergence`] on
    /// every comparison (typically
    /// `registry.gauge("serve_drift_divergence")`).
    pub fn bind_gauge(&self, gauge: Gauge) {
        *self.lock_gauge() = Some(gauge);
    }

    fn lock_gauge(&self) -> std::sync::MutexGuard<'_, Option<Gauge>> {
        self.divergence_gauge
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    /// Whether the baseline is still being collected.
    pub fn is_collecting(&self) -> bool {
        self.baseline
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .is_none()
    }

    /// Whether a `drift.detected` event has fired since the last
    /// (re)baseline.
    pub fn is_latched(&self) -> bool {
        self.latched.load(Ordering::Acquire)
    }

    fn bucket(&self, abs_margin: f64) -> usize {
        self.cfg
            .margin_bounds
            .iter()
            .position(|&b| abs_margin <= b)
            .unwrap_or(self.cfg.margin_bounds.len())
    }

    /// Feeds one classified clip: the raw prediction margin and whether
    /// the cascade escalated it.  During the collect phase this builds
    /// the baseline; afterwards it feeds the window and runs the
    /// comparison.  Returns the report when this observation crossed a
    /// threshold *for the first time* since (re)baseline — the caller
    /// doesn't need to do anything with it (the event and gauge are
    /// already handled), but tests and operators may want the numbers.
    pub fn observe(&self, margin: f64, escalated: bool) -> Option<DriftReport> {
        if !margin.is_finite() {
            return None;
        }
        let abs = margin.abs();
        {
            let mut baseline = self.baseline.lock().unwrap_or_else(|p| p.into_inner());
            if baseline.is_none() {
                let mut coll = self.collecting.lock().unwrap_or_else(|p| p.into_inner());
                let idx = self.bucket(abs);
                coll.counts[idx] += 1;
                coll.total += 1;
                if escalated {
                    coll.escalated += 1;
                }
                if coll.total >= self.cfg.baseline_samples {
                    *baseline = Some(coll.clone());
                }
                return None;
            }
        }
        self.live_margins.observe(abs);
        if escalated {
            self.live_escalations.observe(1.0);
        }
        self.compare()
    }

    /// Current divergence vs the baseline, or `None` while collecting
    /// or under `min_window_samples`.  Side effects: keeps the bound
    /// gauge current, and fires the latched `drift.detected` event on
    /// first threshold crossing.
    pub fn compare(&self) -> Option<DriftReport> {
        let mut scratch = self.scratch.lock().unwrap_or_else(|p| p.into_inner());
        scratch.iter_mut().for_each(|c| *c = 0);
        let live_count = self.live_margins.accumulate_counts(&mut scratch);
        if live_count < self.cfg.min_window_samples {
            return None;
        }
        let (tvd, base_rate, base_total) = {
            let guard = self.baseline.lock().unwrap_or_else(|p| p.into_inner());
            let baseline = guard.as_ref()?;
            let mut tvd = 0.0;
            for (&b, &l) in baseline.counts.iter().zip(scratch.iter()) {
                let p = b as f64 / baseline.total as f64;
                let q = l as f64 / live_count as f64;
                tvd += (p - q).abs();
            }
            (tvd * 0.5, baseline.escalation_rate(), baseline.total)
        };
        drop(scratch);
        let live_rate = self.live_escalations.count() as f64 / live_count as f64;
        let report = DriftReport {
            margin_tvd: tvd,
            escalation_delta: (live_rate - base_rate).abs(),
            baseline_samples: base_total,
            window_samples: live_count,
        };
        if let Some(gauge) = self.lock_gauge().as_ref() {
            gauge.set(report.divergence());
        }
        let crossed = report.margin_tvd > self.cfg.margin_tvd_threshold
            || report.escalation_delta > self.cfg.escalation_delta_threshold;
        if crossed
            && self
                .latched
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            trace::dispatch_event(
                "drift.detected",
                &[
                    ("margin_tvd", report.margin_tvd.into()),
                    ("escalation_delta", report.escalation_delta.into()),
                    ("divergence", report.divergence().into()),
                    ("baseline_samples", report.baseline_samples.into()),
                    ("window_samples", report.window_samples.into()),
                    ("at_ns", self.clock.now_ns().into()),
                ],
            );
            return Some(report);
        }
        None
    }

    /// Forgets the baseline and re-enters the collect phase — called
    /// after a successful model hot-swap so the new model's
    /// distribution becomes the reference, and the drift latch re-arms.
    pub fn rebaseline(&self) {
        let mut baseline = self.baseline.lock().unwrap_or_else(|p| p.into_inner());
        let mut coll = self.collecting.lock().unwrap_or_else(|p| p.into_inner());
        *baseline = None;
        coll.counts.iter_mut().for_each(|c| *c = 0);
        coll.total = 0;
        coll.escalated = 0;
        self.latched.store(false, Ordering::Release);
        if let Some(gauge) = self.lock_gauge().as_ref() {
            gauge.set(0.0);
        }
    }
}

impl std::fmt::Debug for DriftMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriftMonitor")
            .field("collecting", &self.is_collecting())
            .field("latched", &self.is_latched())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;
    use crate::metrics::MetricsRegistry;
    use crate::subscribers::CollectingSubscriber;

    fn cfg() -> DriftConfig {
        DriftConfig {
            baseline_samples: 100,
            min_window_samples: 50,
            ..DriftConfig::default()
        }
    }

    #[test]
    fn collect_phase_emits_nothing() {
        let clock = Arc::new(MockClock::new());
        let m = DriftMonitor::with_clock(cfg(), clock);
        for _ in 0..99 {
            assert_eq!(m.observe(0.5, false), None);
            assert!(m.is_collecting());
        }
        m.observe(0.5, false);
        assert!(!m.is_collecting(), "baseline froze at baseline_samples");
    }

    #[test]
    fn matching_distribution_stays_quiet() {
        let clock = Arc::new(MockClock::new());
        let m = DriftMonitor::with_clock(cfg(), clock);
        for _ in 0..100 {
            m.observe(0.5, false); // baseline: everything comfortable
        }
        for _ in 0..200 {
            assert_eq!(m.observe(0.5, false), None);
        }
        assert!(!m.is_latched());
        let report = {
            // compare() without a crossing returns None; inspect via a
            // bound gauge instead.
            let reg = MetricsRegistry::new();
            let g = reg.gauge("divergence");
            m.bind_gauge(g.clone());
            m.compare();
            g.get()
        };
        assert!(report < 0.05, "near-zero divergence, got {report}");
    }

    #[test]
    fn shifted_margins_emit_exactly_one_event() {
        let clock = Arc::new(MockClock::new());
        let sink = Arc::new(CollectingSubscriber::new());
        let old = trace::set_subscriber(sink.clone());

        let m = DriftMonitor::with_clock(cfg(), clock);
        for _ in 0..100 {
            m.observe(1.0, false); // baseline: confident margins
        }
        // Live workload collapses onto the decision boundary: maximal
        // bucket shift, TVD → 1.  Keep feeding well past the crossing —
        // the latch must hold the event count at one.
        let mut reports = 0;
        for _ in 0..300 {
            if m.observe(0.01, false).is_some() {
                reports += 1;
            }
        }
        assert_eq!(reports, 1, "observe() surfaced the crossing once");
        assert!(m.is_latched());
        let events = sink
            .records()
            .into_iter()
            .filter(|r| matches!(r, crate::subscribers::Record::Event { name, .. } if name == "drift.detected"))
            .count();
        assert_eq!(events, 1, "exactly one drift.detected event");

        match old {
            Some(prev) => {
                trace::set_subscriber(prev);
            }
            None => {
                trace::clear_subscriber();
            }
        }
    }

    #[test]
    fn escalation_rate_shift_alone_triggers() {
        let clock = Arc::new(MockClock::new());
        let m = DriftMonitor::with_clock(cfg(), clock);
        for _ in 0..100 {
            m.observe(0.5, false); // baseline: no escalations
        }
        // Same margins, but now every clip escalates: margin TVD ≈ 0,
        // escalation delta = 1.
        let mut crossed = None;
        for _ in 0..60 {
            if let Some(r) = m.observe(0.5, true) {
                crossed = Some(r);
            }
        }
        let r = crossed.expect("escalation-rate shift detected");
        assert!(r.margin_tvd < 0.05, "margins did not drift: {r:?}");
        assert!(r.escalation_delta > 0.9, "rate shifted fully: {r:?}");
    }

    #[test]
    fn rebaseline_rearms_and_recollects() {
        let clock = Arc::new(MockClock::new());
        let m = DriftMonitor::with_clock(cfg(), clock.clone());
        for _ in 0..100 {
            m.observe(1.0, false);
        }
        for _ in 0..60 {
            m.observe(0.01, false);
        }
        assert!(m.is_latched());

        m.rebaseline();
        assert!(m.is_collecting());
        assert!(!m.is_latched());
        // New baseline = the shifted workload; same workload after the
        // swap means no drift.  Let the old window expire first so the
        // pre-swap live samples don't pollute the comparison.
        clock.advance(7 * 10_000_000_000);
        for _ in 0..100 {
            m.observe(0.01, false);
        }
        for _ in 0..60 {
            assert_eq!(m.observe(0.01, false), None);
        }
        assert!(!m.is_latched(), "post-swap workload matches new baseline");
    }

    #[test]
    fn gauge_tracks_divergence() {
        let clock = Arc::new(MockClock::new());
        let reg = MetricsRegistry::new();
        let gauge = reg.gauge("serve_drift_divergence");
        let m = DriftMonitor::with_clock(cfg(), clock);
        m.bind_gauge(gauge.clone());
        for _ in 0..100 {
            m.observe(1.0, false);
        }
        for _ in 0..60 {
            m.observe(0.01, false);
        }
        assert!(gauge.get() > 0.9, "gauge shows divergence: {}", gauge.get());
        m.rebaseline();
        assert_eq!(gauge.get(), 0.0, "rebaseline clears the gauge");
    }

    #[test]
    fn non_finite_margins_ignored() {
        let clock = Arc::new(MockClock::new());
        let m = DriftMonitor::with_clock(cfg(), clock);
        assert_eq!(m.observe(f64::NAN, true), None);
        assert!(m.is_collecting());
    }
}
