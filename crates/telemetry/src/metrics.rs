//! A thread-safe metrics registry: counters, gauges, and fixed-bucket
//! histograms with p50/p95/p99 summaries, exportable as Prometheus text
//! format and as JSON.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones over atomics: register once, then update from any thread
//! without touching the registry lock again.  Registration is
//! idempotent — the same name + label set always returns the same
//! underlying metric, so independent subsystems can share a series
//! without coordination.
//!
//! # Example
//!
//! ```
//! use hotspot_telemetry::metrics::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! reg.counter("clips_total").add(3);
//! reg.gauge("last_loss").set(0.25);
//! let h = reg.histogram("step_ns", &[10.0, 100.0, 1000.0]);
//! h.observe(42.0);
//! let text = reg.to_prometheus();
//! assert!(text.contains("clips_total 3"));
//! ```

use crate::json::{push_f64, push_str_literal};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A label set attached to a metric series (sorted at registration so
/// `[a, b]` and `[b, a]` are the same series).
pub type Labels = Vec<(String, String)>;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper bounds of the finite buckets, strictly increasing.  An
    /// implicit +∞ bucket (index `bounds.len()`) catches the rest.
    bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    counts: Vec<AtomicU64>,
    /// Sum of observations, as CAS-updated f64 bits.
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram of `f64` observations.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation (non-finite values are dropped — a NaN
    /// sample must not poison the running sum).
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let core = &self.0;
        let idx = core
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(core.bounds.len());
        core.counts[idx].fetch_add(1, Ordering::Relaxed);
        let mut old = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(old) + v).to_bits();
            match core.sum_bits.compare_exchange_weak(
                old,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => old = cur,
            }
        }
    }

    /// A consistent-enough point-in-time copy (individual bucket loads
    /// are relaxed; concurrent writers may land between loads, which is
    /// acceptable for monitoring output).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &self.0;
        let counts: Vec<u64> = core
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            bounds: core.bounds.clone(),
            count: counts.iter().sum(),
            sum: f64::from_bits(core.sum_bits.load(Ordering::Relaxed)),
            counts,
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with quantile estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1`, last is the +∞ bucket).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean observation, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Estimates the `q`-quantile (`0 < q <= 1`) by linear
    /// interpolation inside the bucket containing the target rank,
    /// Prometheus-style: the first bucket interpolates from zero, and
    /// a rank landing in the +∞ bucket reports the highest finite
    /// bound.  Returns `None` for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `(0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1], got {q}");
        if self.count == 0 {
            return None;
        }
        let rank = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if (cum as f64) >= rank {
                if i >= self.bounds.len() {
                    // +∞ bucket: the best point estimate is the largest
                    // finite bound (or the sum itself when there are no
                    // finite buckets at all).
                    return Some(self.bounds.last().copied().unwrap_or(self.sum));
                }
                let upper = self.bounds[i];
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let into_bucket = rank - (cum - c) as f64;
                return Some(lower + (upper - lower) * into_bucket / c as f64);
            }
        }
        Some(self.bounds.last().copied().unwrap_or(self.sum))
    }

    /// The p50/p95/p99 summary, or `None` when empty.
    pub fn percentiles(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.95)?,
            self.quantile(0.99)?,
        ))
    }
}

/// `count` exponential bucket bounds starting at `start`, each `factor`
/// times the previous — the standard shape for latency histograms.
///
/// # Panics
///
/// Panics on a non-positive `start`, a `factor <= 1`, or `count == 0`.
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0, "start must be positive");
    assert!(factor > 1.0, "factor must exceed 1");
    assert!(count > 0, "count must be positive");
    let mut out = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        out.push(b);
        b *= factor;
    }
    out
}

/// The default nanosecond-latency buckets used by the profiling hooks:
/// 1 µs to ~17 s in ×4 steps.
pub fn duration_ns_buckets() -> Vec<f64> {
    exponential_buckets(1_000.0, 4.0, 13)
}

/// Nanosecond-latency buckets at serving resolution: 10 µs to ~42 s in
/// ×2 steps.  Request-latency SLOs live in a narrow band (hundreds of
/// microseconds to tens of milliseconds), where the coarse ×4 profiling
/// buckets would smear p95/p99 estimates across a 4× range; the ×2
/// ladder keeps interpolated quantiles within a factor of two of the
/// true value across the whole band.
pub fn serving_latency_ns_buckets() -> Vec<f64> {
    exponential_buckets(10_000.0, 2.0, 22)
}

/// Small-integer buckets (1..=`max`, then +∞) for batch-fill and
/// queue-depth histograms, where the interesting values are exact small
/// counts rather than orders of magnitude.
pub fn depth_buckets(max: usize) -> Vec<f64> {
    (1..=max).map(|v| v as f64).collect()
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// `(name, sorted labels)` — the identity of one series.
type Key = (String, Labels);

/// A thread-safe registry of named metrics (see module docs).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    series: Mutex<BTreeMap<Key, Metric>>,
}

fn make_key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut labels: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    (name.to_string(), labels)
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or fetches) an unlabelled counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Registers (or fetches) a labelled counter.
    ///
    /// # Panics
    ///
    /// Panics when the series already exists with a different metric
    /// kind.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let mut series = self.series.lock().unwrap_or_else(|p| p.into_inner());
        match series
            .entry(make_key(name, labels))
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} is already registered with a different kind"),
        }
    }

    /// Registers (or fetches) an unlabelled gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Registers (or fetches) a labelled gauge.
    ///
    /// # Panics
    ///
    /// Panics when the series already exists with a different metric
    /// kind.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut series = self.series.lock().unwrap_or_else(|p| p.into_inner());
        match series
            .entry(make_key(name, labels))
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} is already registered with a different kind"),
        }
    }

    /// Registers (or fetches) an unlabelled histogram with the given
    /// finite bucket bounds (strictly increasing; an implicit +∞ bucket
    /// is appended).  When the series already exists its original
    /// buckets win.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, &[], bounds)
    }

    /// Registers (or fetches) a labelled histogram.
    ///
    /// # Panics
    ///
    /// Panics on unsorted bounds or when the series already exists with
    /// a different metric kind.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let mut series = self.series.lock().unwrap_or_else(|p| p.into_inner());
        match series.entry(make_key(name, labels)).or_insert_with(|| {
            Metric::Histogram(Histogram(Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            })))
        }) {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} is already registered with a different kind"),
        }
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.series.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn sorted_series(&self) -> Vec<(Key, Metric)> {
        self.series
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Renders every series in the Prometheus text exposition format.
    /// Labelled series of the same family share one `# TYPE` line, as
    /// the exposition format requires.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        // sorted_series orders by (name, labels), so one family's
        // series are adjacent and the TYPE line is emitted once.
        let mut last_family: Option<String> = None;
        for ((name, labels), metric) in self.sorted_series() {
            let new_family = last_family.as_deref() != Some(name.as_str());
            if new_family {
                last_family = Some(name.clone());
            }
            match metric {
                Metric::Counter(c) => {
                    if new_family {
                        let _ = writeln!(out, "# TYPE {name} counter");
                    }
                    let _ = writeln!(out, "{name}{} {}", prom_labels(&labels, None), c.get());
                }
                Metric::Gauge(g) => {
                    if new_family {
                        let _ = writeln!(out, "# TYPE {name} gauge");
                    }
                    let _ = writeln!(out, "{name}{} {}", prom_labels(&labels, None), g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    if new_family {
                        let _ = writeln!(out, "# TYPE {name} histogram");
                    }
                    let mut cum = 0u64;
                    for (i, &bound) in snap.bounds.iter().enumerate() {
                        cum += snap.counts[i];
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cum}",
                            prom_labels(&labels, Some(&format!("{bound}")))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {}",
                        prom_labels(&labels, Some("+Inf")),
                        snap.count
                    );
                    let _ = writeln!(out, "{name}_sum{} {}", prom_labels(&labels, None), snap.sum);
                    let _ = writeln!(
                        out,
                        "{name}_count{} {}",
                        prom_labels(&labels, None),
                        snap.count
                    );
                }
            }
        }
        out
    }

    /// Renders every series as one JSON object:
    /// `{"counters": [...], "gauges": [...], "histograms": [...]}`,
    /// histograms carrying count/sum/mean and the p50/p95/p99 summary.
    pub fn to_json(&self) -> String {
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for ((name, labels), metric) in self.sorted_series() {
            match metric {
                Metric::Counter(c) => {
                    let mut rec = String::new();
                    json_series_head(&mut rec, &name, &labels);
                    let _ = write!(rec, "\"value\":{}}}", c.get());
                    push_sep(&mut counters, &rec);
                }
                Metric::Gauge(g) => {
                    let mut rec = String::new();
                    json_series_head(&mut rec, &name, &labels);
                    rec.push_str("\"value\":");
                    push_f64(&mut rec, g.get());
                    rec.push('}');
                    push_sep(&mut gauges, &rec);
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut rec = String::new();
                    json_series_head(&mut rec, &name, &labels);
                    let _ = write!(rec, "\"count\":{},\"sum\":", snap.count);
                    push_f64(&mut rec, snap.sum);
                    for (key, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                        let _ = write!(rec, ",\"{key}\":");
                        match snap.quantile(q) {
                            Some(v) => push_f64(&mut rec, v),
                            None => rec.push_str("null"),
                        }
                    }
                    rec.push_str(",\"buckets\":[");
                    for (i, &b) in snap.bounds.iter().enumerate() {
                        if i > 0 {
                            rec.push(',');
                        }
                        rec.push_str("{\"le\":");
                        push_f64(&mut rec, b);
                        let _ = write!(rec, ",\"count\":{}}}", snap.counts[i]);
                    }
                    let _ = write!(
                        rec,
                        "{}{{\"le\":\"+Inf\",\"count\":{}}}]}}",
                        if snap.bounds.is_empty() { "" } else { "," },
                        snap.counts[snap.bounds.len()]
                    );
                    push_sep(&mut histograms, &rec);
                }
            }
        }
        format!("{{\"counters\":[{counters}],\"gauges\":[{gauges}],\"histograms\":[{histograms}]}}")
    }
}

fn push_sep(list: &mut String, rec: &str) {
    if !list.is_empty() {
        list.push(',');
    }
    list.push_str(rec);
}

fn json_series_head(rec: &mut String, name: &str, labels: &Labels) {
    rec.push_str("{\"name\":");
    push_str_literal(rec, name);
    rec.push_str(",\"labels\":{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            rec.push(',');
        }
        push_str_literal(rec, k);
        rec.push(':');
        push_str_literal(rec, v);
    }
    rec.push_str("},");
}

/// Renders a Prometheus label block, optionally with a trailing `le`.
fn prom_labels(labels: &Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    if let Some(le) = le {
        if !labels.is_empty() {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// The process-wide registry used by the library wiring (training,
/// inference profiling, dataset generation).  Tests that need isolation
/// create their own [`MetricsRegistry`]; counters here are monotonic,
/// so concurrent test threads only ever add.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hits_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same series.
        assert_eq!(reg.counter("hits_total").get(), 5);
        let g = reg.gauge("loss");
        g.set(0.75);
        assert_eq!(reg.gauge("loss").get(), 0.75);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn labels_distinguish_series_regardless_of_order() {
        let reg = MetricsRegistry::new();
        reg.counter_with("x", &[("a", "1"), ("b", "2")]).add(3);
        assert_eq!(reg.counter_with("x", &[("b", "2"), ("a", "1")]).get(), 3);
        reg.counter_with("x", &[("a", "2")]).add(9);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_are_rejected() {
        let reg = MetricsRegistry::new();
        reg.counter("m");
        reg.gauge("m");
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![1, 2, 1, 1]);
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 560.5);
        assert_eq!(snap.mean(), Some(112.1));
    }

    #[test]
    fn non_finite_observations_are_dropped() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(0.5);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 0.5);
    }

    #[test]
    fn exponential_buckets_grow_by_factor() {
        assert_eq!(exponential_buckets(1.0, 10.0, 3), vec![1.0, 10.0, 100.0]);
        let b = duration_ns_buckets();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn serving_buckets_cover_the_slo_band_at_2x_resolution() {
        let b = serving_latency_ns_buckets();
        assert!(b.windows(2).all(|w| w[1] == w[0] * 2.0));
        assert_eq!(b[0], 10_000.0, "floor at 10 µs");
        assert!(
            *b.last().unwrap() > 10e9,
            "ceiling past 10 s so drain-timeout tails stay finite"
        );
        // A 3 ms observation lands in a bucket no wider than ×2.
        let h = MetricsRegistry::new().histogram("lat_ns", &b);
        h.observe(3.0e6);
        let q = h.snapshot().quantile(0.99).unwrap();
        assert!((1.5e6..=6.0e6).contains(&q), "p99 estimate {q} off by > 2x");
    }

    #[test]
    fn depth_buckets_are_exact_small_counts() {
        assert_eq!(depth_buckets(4), vec![1.0, 2.0, 3.0, 4.0]);
        assert!(depth_buckets(0).is_empty());
    }

    #[test]
    fn prometheus_text_format() {
        let reg = MetricsRegistry::new();
        reg.counter("reqs_total").add(7);
        reg.gauge_with("temp", &[("zone", "a")]).set(1.5);
        reg.histogram("lat", &[1.0, 2.0]).observe(1.5);
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE reqs_total counter"), "{text}");
        assert!(text.contains("reqs_total 7"), "{text}");
        assert!(text.contains("temp{zone=\"a\"} 1.5"), "{text}");
        assert!(text.contains("lat_bucket{le=\"1\"} 0"), "{text}");
        assert!(text.contains("lat_bucket{le=\"2\"} 1"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("lat_sum 1.5"), "{text}");
        assert!(text.contains("lat_count 1"), "{text}");
    }

    #[test]
    fn prometheus_type_line_emitted_once_per_family() {
        let reg = MetricsRegistry::new();
        reg.counter_with("layer_ns_total", &[("layer", "stem")])
            .add(1);
        reg.counter_with("layer_ns_total", &[("layer", "fc")])
            .add(2);
        reg.counter("other_total").inc();
        let text = reg.to_prometheus();
        assert_eq!(
            text.matches("# TYPE layer_ns_total counter").count(),
            1,
            "one TYPE line per family:\n{text}"
        );
        assert!(text.contains("layer_ns_total{layer=\"fc\"} 2"), "{text}");
        assert!(text.contains("layer_ns_total{layer=\"stem\"} 1"), "{text}");
        assert!(text.contains("# TYPE other_total counter"), "{text}");
    }

    #[test]
    fn json_export_carries_percentiles() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[10.0, 100.0]);
        for _ in 0..10 {
            h.observe(5.0);
        }
        let json = reg.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"name\":\"lat\""), "{json}");
        assert!(json.contains("\"count\":10"), "{json}");
        assert!(json.contains("\"p50\":"), "{json}");
        assert!(json.contains("\"le\":\"+Inf\""), "{json}");
    }

    #[test]
    fn concurrent_updates_lose_nothing() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("n");
        let h = reg.histogram("h", &[1e6]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                        h.observe(1.0);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 8000);
        assert_eq!(snap.sum, 8000.0);
    }
}
