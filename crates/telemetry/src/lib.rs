//! In-tree observability for the BRNN hotspot workspace: structured
//! tracing spans, a metrics registry, and per-layer profiling
//! primitives — with no external dependencies, mirroring the offline
//! `compat/` philosophy (this build environment has no network).
//!
//! Three cooperating pieces (see DESIGN.md §5e):
//!
//! * **Tracing facade** ([`trace`], [`span!`], [`event!`]): producers
//!   emit named, typed-field spans and events; a process-wide
//!   [`Subscriber`] receives them.  Disabled cost is one relaxed
//!   atomic load.  Stock sinks: [`JsonlSubscriber`] (machine-readable
//!   trace files) and [`StderrSubscriber`] (pretty progress lines).
//! * **Metrics** ([`metrics`]): thread-safe counters, gauges, and
//!   fixed-bucket histograms with p50/p95/p99 summaries, exportable as
//!   Prometheus text format or JSON.  A [`metrics::global`] registry
//!   serves the library wiring; tests build their own.
//! * **Profiling** ([`profile`], [`clock`]): [`SlotProfiler`]
//!   accumulates per-layer nanoseconds with zero heap traffic in the
//!   hot loop, against a mockable [`Clock`].
//!
//! # Example
//!
//! ```
//! use hotspot_telemetry::subscribers::CollectingSubscriber;
//! use hotspot_telemetry::{event, span, trace};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(CollectingSubscriber::new());
//! let old = trace::set_subscriber(sink.clone());
//! {
//!     let _epoch = span!("train.epoch", epoch = 0usize);
//!     event!("train.loss", loss = 0.41f64);
//! }
//! match old {
//!     Some(prev) => { trace::set_subscriber(prev); }
//!     None => { trace::clear_subscriber(); }
//! }
//! assert_eq!(sink.records().len(), 3); // span start, event, span end
//! ```

pub mod clock;
pub mod drift;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod subscribers;
pub mod trace;
pub mod window;

pub use clock::{Clock, MockClock, MonotonicClock, Timer};
pub use drift::{DriftConfig, DriftMonitor, DriftReport};
pub use flight::{next_trace_id, FlightRecorder, Outcome, RequestRecord, Stage, STAGE_NAMES};
pub use metrics::{
    depth_buckets, duration_ns_buckets, exponential_buckets, serving_latency_ns_buckets, Counter,
    Gauge, Histogram, HistogramSnapshot, MetricsRegistry,
};
pub use profile::{SlotProfiler, SlotTiming};
pub use subscribers::{CollectingSubscriber, JsonlSubscriber, Record, StderrSubscriber};
pub use trace::{SpanGuard, Subscriber, Value};
pub use window::WindowedHistogram;
