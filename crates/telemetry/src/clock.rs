//! Cheap monotonic timing with a mockable clock.
//!
//! Everything in this crate that measures durations does so through
//! [`Clock`], so tests can substitute a [`MockClock`] and assert exact
//! nanosecond values instead of sleeping.  The production
//! [`MonotonicClock`] anchors `std::time::Instant` at first use and
//! reports nanoseconds since that anchor — a single `u64` that is cheap
//! to subtract, store in atomics, and serialize.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A source of monotonic nanosecond timestamps.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds elapsed since an arbitrary fixed origin.  Must never
    /// decrease between two calls observed by one thread.
    fn now_ns(&self) -> u64;
}

/// The process anchor shared by every [`MonotonicClock`], so timestamps
/// from different clock instances are comparable.
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Wall clock: `std::time::Instant` relative to a process-wide anchor.
#[derive(Debug, Clone, Copy, Default)]
pub struct MonotonicClock;

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        anchor().elapsed().as_nanos() as u64
    }
}

/// A deterministic clock for tests: time only moves when
/// [`advance`](MockClock::advance) is called.
#[derive(Debug, Default)]
pub struct MockClock {
    now: AtomicU64,
}

impl MockClock {
    /// A clock frozen at t = 0.
    pub fn new() -> Self {
        MockClock::default()
    }

    /// Moves the clock forward by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }
}

impl Clock for MockClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

/// Measures one duration against a borrowed clock.
///
/// ```
/// use hotspot_telemetry::{MockClock, Timer};
///
/// let clock = MockClock::new();
/// let timer = Timer::start(&clock);
/// clock.advance(1_500);
/// assert_eq!(timer.elapsed_ns(), 1_500);
/// ```
#[derive(Debug)]
pub struct Timer<'c> {
    clock: &'c dyn Clock,
    start_ns: u64,
}

impl<'c> Timer<'c> {
    /// Starts timing now.
    pub fn start(clock: &'c dyn Clock) -> Self {
        Timer {
            clock,
            start_ns: clock.now_ns(),
        }
    }

    /// Nanoseconds since [`start`](Timer::start); the timer keeps
    /// running.
    pub fn elapsed_ns(&self) -> u64 {
        self.clock.now_ns().saturating_sub(self.start_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock;
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn mock_clock_is_deterministic() {
        let clock = MockClock::new();
        assert_eq!(clock.now_ns(), 0);
        clock.advance(42);
        assert_eq!(clock.now_ns(), 42);
        let t = Timer::start(&clock);
        clock.advance(8);
        clock.advance(2);
        assert_eq!(t.elapsed_ns(), 10);
    }

    #[test]
    fn shared_anchor_makes_clock_instances_comparable() {
        let a = MonotonicClock.now_ns();
        let b = MonotonicClock.now_ns();
        assert!(b >= a, "fresh instances must share the anchor");
    }
}
