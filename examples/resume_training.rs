//! Fault-tolerant training end to end: checkpoint every epoch, simulate
//! a crash partway through the run, and resume from the last checkpoint
//! on disk — landing on exactly the weights the uninterrupted run
//! produces.
//!
//! ```sh
//! cargo run --release --example resume_training
//! ```

use hotspot_core::checkpoint::snapshot_net;
use hotspot_core::{latest_checkpoint, BitImage, BnnDetector, BnnTrainConfig, LabeledClip};
use hotspot_layout_gen::PatternFamily;

/// Dense vs. sparse stripe clips: a tiny learnable problem so the
/// example runs in seconds.
fn toy_clips(n: usize, side: usize) -> Vec<LabeledClip> {
    (0..n)
        .map(|i| {
            let hotspot = i % 2 == 0;
            let mut img = BitImage::new(side, side);
            let step = if hotspot { 4 } else { 12 };
            let mut y = i % 3;
            while y < side {
                img.fill_row_span(y, 0, side);
                y += step;
            }
            LabeledClip {
                image: img,
                hotspot,
                family: PatternFamily::LineSpace,
            }
        })
        .collect()
}

fn main() {
    let clips = toy_clips(24, 32);
    let dir = std::env::temp_dir().join(format!("brnn_resume_demo_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut cfg = BnnTrainConfig::fast();
    cfg.epochs = 5;
    cfg.bias_epochs = 1;
    cfg.verbose = true;
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.checkpoint_every = 1;

    // Reference run: trains to completion, writing epochNNNN.brnnck
    // after every epoch.
    println!("=== reference run (uninterrupted) ===");
    let mut reference = BnnDetector::new(cfg.clone());
    reference.try_fit(&clips).expect("reference run");
    let ref_weights = {
        let mut net = reference.network().expect("trained");
        snapshot_net(&mut net)
    };

    // Simulate a crash right after epoch 3's checkpoint landed: every
    // later checkpoint disappears, exactly as if the process had been
    // killed there.
    let killed_after = 3;
    for entry in std::fs::read_dir(&dir).expect("read checkpoint dir") {
        let path = entry.expect("dir entry").path();
        let keep = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.strip_prefix("epoch"))
            .and_then(|n| n.strip_suffix(".brnnck"))
            .and_then(|n| n.parse::<usize>().ok())
            .is_some_and(|e| e <= killed_after);
        if !keep {
            std::fs::remove_file(&path).expect("remove");
        }
    }
    println!("\n=== simulated crash after epoch {killed_after} ===");

    // A fresh process finds the newest checkpoint and continues.
    let ck = latest_checkpoint(&dir).expect("surviving checkpoint");
    println!("resuming from {}\n", ck.display());
    let mut resumed = BnnDetector::new(cfg);
    resumed.resume(&ck, &clips).expect("resume");

    // The resumed trajectory is bit-identical to the uninterrupted one
    // (wall-clock epoch durations are machine-dependent and excluded).
    assert_eq!(resumed.history().len(), reference.history().len());
    assert!(
        resumed
            .history()
            .iter()
            .zip(reference.history())
            .all(|(r, f)| r.same_trajectory(f)),
        "per-epoch history must match"
    );
    println!(
        "cumulative training time: reference {:.2}s, resumed {:.2}s \
         (resumed includes checkpointed epochs)",
        reference.total_training_secs(),
        resumed.total_training_secs()
    );
    let res_weights = {
        let mut net = resumed.network().expect("trained");
        snapshot_net(&mut net)
    };
    assert_eq!(res_weights.0, ref_weights.0, "parameters must match");
    assert_eq!(res_weights.1, ref_weights.1, "batch-norm state must match");

    println!(
        "resumed run reproduced all {} epochs bit-identically \
         ({} parameter tensors, {} state buffers verified)",
        reference.history().len(),
        ref_weights.0.len(),
        ref_weights.1.len(),
    );
    let _ = std::fs::remove_dir_all(&dir);
}
