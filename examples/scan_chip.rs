//! Full-chip scanning: stitch a chip with embedded, oracle-labelled
//! hotspot sites, sweep it with the streaming scanner, and compare the
//! merged defect regions against the ground truth.
//!
//! ```text
//! cargo run --release -p hotspot-core --example scan_chip
//! ```

use hotspot_core::{
    generate_chip, BnnResNet, ChipSpec, ClipGenerator, HotspotOracle, NetConfig, OpticalModel,
    PackedBnn, ScanConfig, Scanner, Workspace,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A 4x4-cell chip: 1280 nm clips at 10 nm/px make 128 px cells,
    //    one model window each.  Three cells are rejection-sampled
    //    until the litho oracle calls them hotspots, the rest until it
    //    calls them clean — exact site-level ground truth.
    println!("stitching a chip (litho-simulating every cell)...");
    let oracle = HotspotOracle::new(OpticalModel::default());
    let clips = ClipGenerator::new(1280);
    let spec = ChipSpec::new(4, 3, 7);
    let chip = generate_chip(&spec, &clips, |layout, window| oracle.label(layout, window))
        .expect("chip generation");
    println!(
        "  {}x{} px ({:.1} µm²), {} hotspot sites at {:?}",
        chip.width_px,
        chip.height_px,
        chip.area_mm2() * 1e6,
        chip.sites.len(),
        chip.sites.iter().map(|s| s.center_px).collect::<Vec<_>>()
    );

    // 2. The paper's 12-layer network (randomly initialised here —
    //    substitute a trained `BnnDetector`'s packed model for real
    //    use) wrapped in the streaming scanner: stride 64 gives 2x
    //    window overlap, the cascade confirms low-margin windows at
    //    the full residual depth.
    let config = NetConfig::paper_12layer().with_levels(2);
    let mut rng = StdRng::seed_from_u64(2019);
    let model = PackedBnn::compile(&BnnResNet::new(&config, &mut rng));
    let scanner = Scanner::new(&model, config.input_size, ScanConfig::new(64));
    println!(
        "scanning (window {}, stride 64, prefix reuse {:?})...",
        config.input_size,
        scanner.reuse_info()
    );
    let mut ws = Workspace::new();
    let report = scanner.scan(&chip.image, &mut ws);

    // 3. Merged defect regions, best-scoring first.
    println!(
        "  {} windows ({} slab-reused, {} duplicate crops), {} hot, {} escalated",
        report.windows, report.reused, report.dedup_hits, report.hotspots, report.escalated
    );
    println!("\ndefect regions:");
    for r in &report.regions {
        println!(
            "  [{:4},{:4})x[{:4},{:4})  score {:+.3}  peak {:?}  {} windows",
            r.x0, r.x1, r.y0, r.y1, r.score, r.peak, r.windows
        );
    }
    for site in &chip.sites {
        let nearest = report
            .regions
            .iter()
            .map(|r| {
                let c = r.center();
                c.0.abs_diff(site.center_px.0) + c.1.abs_diff(site.center_px.1)
            })
            .min();
        match nearest {
            Some(d) => println!(
                "site {:?}: nearest region centre {d} px away",
                site.center_px
            ),
            None => println!("site {:?}: no region found", site.center_px),
        }
    }
}
