//! A guided tour of the telemetry layer: install a JSONL trace
//! subscriber, train a small detector (spans, epoch events, checkpoint
//! timings), profile packed inference per layer, then dump the global
//! metrics registry as Prometheus text and verify the trace file is
//! well-formed.
//!
//! ```sh
//! cargo run --release --example telemetry_inspect [TRACE.jsonl]
//! ```

use hotspot_core::{BitImage, BnnDetector, BnnTrainConfig, LabeledClip};
use hotspot_layout_gen::PatternFamily;
use hotspot_telemetry::subscribers::JsonlSubscriber;
use hotspot_telemetry::{metrics, trace};
use std::path::PathBuf;
use std::sync::Arc;

/// Dense vs. sparse stripe clips: a tiny learnable problem.
fn toy_clips(n: usize, side: usize) -> Vec<LabeledClip> {
    (0..n)
        .map(|i| {
            let hotspot = i % 2 == 0;
            let mut img = BitImage::new(side, side);
            let step = if hotspot { 4 } else { 12 };
            let mut y = i % 3;
            while y < side {
                img.fill_row_span(y, 0, side);
                y += step;
            }
            LabeledClip {
                image: img,
                hotspot,
                family: PatternFamily::LineSpace,
            }
        })
        .collect()
}

fn main() {
    let trace_path: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("brnn_telemetry_inspect.jsonl"));
    let ck_dir = std::env::temp_dir().join(format!("brnn_inspect_ck_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ck_dir);

    // 1. Install the JSONL trace sink: from here on every span and
    //    event in the pipeline lands in the file, one object per line.
    let sink = Arc::new(JsonlSubscriber::create(&trace_path).expect("create trace file"));
    trace::set_subscriber(sink.clone());

    // 2. Train: emits train.fit/train.epoch spans, per-epoch events
    //    with loss and learning rate, and checkpoint write timings.
    let clips = toy_clips(24, 32);
    let mut cfg = BnnTrainConfig::fast();
    cfg.epochs = 3;
    cfg.bias_epochs = 1;
    cfg.checkpoint_dir = Some(ck_dir.clone());
    let mut det = BnnDetector::new(cfg);
    det.try_fit(&clips).expect("training");
    println!(
        "trained {} epochs in {:.2}s wall-clock",
        det.history().len(),
        det.total_training_secs()
    );

    // 3. Profile packed inference: every execution-plan step gets its
    //    own timing slot; export them into the global registry.
    let images: Vec<&BitImage> = clips.iter().map(|c| &c.image).collect();
    let (margins, prof) = det.profile_packed_inference(&images);
    println!(
        "scored {} clips through the profiled XNOR path",
        margins.len()
    );
    prof.export_to(metrics::global(), "inference_layer", "layer");
    println!("\n== per-layer inference timing ==");
    for slot in prof.report() {
        println!(
            "{:<16} {:>4} calls {:>12} ns total {:>10.1} ns mean",
            slot.name,
            slot.calls,
            slot.total_ns,
            slot.mean_ns()
        );
    }

    // 4. The global metrics registry, Prometheus exposition format.
    let prom = metrics::global().to_prometheus();
    println!("\n== metrics (prometheus) ==\n{prom}");
    for required in [
        "train_epochs_total",
        "train_epoch_duration_ns",
        "train_checkpoint_writes_total",
        "inference_layer_ns_total",
    ] {
        assert!(
            prom.contains(required),
            "metric {required} missing:\n{prom}"
        );
    }

    // 5. Tear down the subscriber and verify the trace parses: every
    //    line is a braced object with a type tag, and the span graph
    //    carries the training epochs.
    trace::clear_subscriber();
    sink.flush();
    let text = std::fs::read_to_string(&trace_path).expect("read trace");
    let mut events = 0usize;
    let mut span_starts = 0usize;
    let mut span_ends = 0usize;
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "malformed trace line: {line}"
        );
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "unbalanced braces: {line}"
        );
        match () {
            _ if line.contains("\"type\":\"event\"") => events += 1,
            _ if line.contains("\"type\":\"span_start\"") => span_starts += 1,
            _ if line.contains("\"type\":\"span_end\"") => span_ends += 1,
            _ => panic!("unknown record type: {line}"),
        }
    }
    assert_eq!(span_starts, span_ends, "every span must close");
    assert!(
        text.contains("\"name\":\"train.epoch\""),
        "trace carries no epoch spans"
    );
    assert!(
        text.contains("\"name\":\"train.checkpoint\""),
        "trace carries no checkpoint events"
    );
    println!(
        "trace ok: {} events, {} spans in {}",
        events,
        span_starts,
        trace_path.display()
    );
    let _ = std::fs::remove_dir_all(&ck_dir);
}
