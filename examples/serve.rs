//! Serve a BNN hotspot model over TCP and exercise it with a client.
//!
//! ```text
//! cargo run --release --example serve
//! ```
//!
//! Trains a tiny detector on a toy problem, starts the serving core on
//! a loopback port, classifies a few clips through the wire protocol
//! (including one past its deadline), performs a model hot-swap, and
//! scrapes the Prometheus metrics — the whole serving surface in one
//! run.

use hotspot_core::{BnnDetector, BnnTrainConfig, HotspotDetector};
use hotspot_geometry::BitImage;
use hotspot_layout_gen::{LabeledClip, PatternFamily};
use hotspot_serve::{Request, Response, ServeClient, ServeConfig, Server};
use std::error::Error;

/// Dense vs. sparse stripe clips: trivially learnable, so the example
/// trains in seconds.
fn toy_clips(n: usize, side: usize) -> Vec<LabeledClip> {
    (0..n)
        .map(|i| {
            let hotspot = i % 2 == 0;
            let mut img = BitImage::new(side, side);
            let step = if hotspot { 4 } else { 12 };
            let mut y = i % 3;
            while y < side {
                img.fill_row_span(y, 0, side);
                y += step;
            }
            LabeledClip {
                image: img,
                hotspot,
                family: PatternFamily::LineSpace,
            }
        })
        .collect()
}

fn main() -> Result<(), Box<dyn Error>> {
    let side = 32;
    println!("training a tiny detector on the toy stripe problem...");
    let clips = toy_clips(40, side);
    let mut det = BnnDetector::new(BnnTrainConfig::fast());
    det.fit(&clips);
    let model = det.packed().expect("trained").clone();

    // Persist the artifact so we can demonstrate a hot-swap below.
    let artifact = std::env::temp_dir().join(format!("serve_example_{}.brnn", std::process::id()));
    hotspot_core::persist::save_model(&artifact, &model)?;

    let server = Server::start(ServeConfig::new(side), model)?;
    println!("serving on {}", server.addr());

    let mut client = ServeClient::connect(server.addr())?;

    // Classify a hotspot-looking clip and a clean one.
    for (id, clip) in clips.iter().take(2).enumerate() {
        match client.classify(id as u64 + 1, &clip.image, 500)? {
            Response::Classify {
                hotspot,
                margin,
                escalated,
                ..
            } => println!(
                "clip {id}: hotspot={hotspot} margin={margin:+.3} escalated={escalated} \
                 (label: {})",
                clip.hotspot
            ),
            other => println!("clip {id}: unexpected reply {other:?}"),
        }
    }

    // A 0 ms budget is not expressible (0 means "server default"), but
    // 1 ms against a deliberately slowed worker shows the deadline
    // path.
    server.fault().set_slow_worker_ms(20);
    match client.classify(100, &clips[0].image, 1)? {
        Response::Error { code, msg, .. } => println!("tight deadline: rejected ({code}): {msg}"),
        other => println!("tight deadline: {other:?}"),
    }
    server.fault().set_slow_worker_ms(0);

    // Hot-swap to the artifact on disk (same weights here; in
    // production, a freshly trained drop-in).
    match client.swap_model(200, artifact.to_str().expect("utf-8 temp path"))? {
        Response::SwapOk { generation, .. } => {
            println!("hot-swap published model generation {generation}");
        }
        other => println!("hot-swap: {other:?}"),
    }

    // Status + metrics through the same connection.
    if let Response::Stats {
        generation,
        degraded,
        queue_depth,
        ..
    } = client.request(&Request::Stats { id: 300 })?
    {
        println!("stats: generation={generation} degraded={degraded} depth={queue_depth}");
    }
    let metrics = client.metrics_text()?;
    let served = metrics
        .lines()
        .find(|l| l.starts_with("serve_responses_total"))
        .unwrap_or("serve_responses_total ?");
    println!("metrics excerpt: {served}");

    let report = server.shutdown();
    println!("shut down cleanly ({} requests flushed)", report.flushed);
    let _ = std::fs::remove_file(&artifact);
    Ok(())
}
