//! Score-based operating-point tuning: train the BNN, trace its ROC,
//! pick the ODST-optimal threshold, and round-trip the compiled model
//! through disk.
//!
//! ```text
//! cargo run --release -p hotspot-core --example roc_tuning
//! ```

use hotspot_core::persist::{load_model, save_model};
use hotspot_core::{
    BnnDetector, BnnTrainConfig, DatasetSpec, HotspotDetector, HotspotOracle, OpticalModel,
    RocCurve,
};

fn main() {
    println!("generating dataset (Table 2 scaled to 1%)...");
    let oracle = HotspotOracle::new(OpticalModel::default());
    let data = DatasetSpec::iccad2012_like().scaled(0.01).build(&oracle);

    println!("training the BNN detector...");
    let mut detector = BnnDetector::new(BnnTrainConfig::bench());
    detector.fit(&data.train);

    // Continuous scores over the test split.
    let images: Vec<_> = data.test.iter().map(|c| &c.image).collect();
    let labels: Vec<bool> = data.test.iter().map(|c| c.hotspot).collect();
    let scores = detector.score_batch(&images);
    let roc = RocCurve::from_scores(&scores, &labels);

    println!("\nROC (AUC {:.3}):", roc.auc());
    println!(
        "{:>12} {:>8} {:>8} {:>6} {:>6}",
        "threshold", "TPR", "FPR", "TP", "FP"
    );
    // Print a decimated view of the curve.
    let pts = roc.points();
    for p in pts.iter().step_by((pts.len() / 12).max(1)) {
        println!(
            "{:>12.3} {:>8.3} {:>8.3} {:>6} {:>6}",
            p.threshold, p.tpr, p.fpr, p.confusion.tp, p.confusion.fp
        );
    }

    let youden = roc.youden_optimal();
    println!(
        "\nYouden-optimal threshold {:.3}: TPR {:.3}, FPR {:.3}",
        youden.threshold, youden.tpr, youden.fpr
    );
    // ODST-optimal operating point under a 90% accuracy floor.
    let odst_pt = roc.odst_optimal(10.0, 0.004, 0.9);
    println!(
        "ODST-optimal (accuracy ≥ 90%): threshold {:.3}, ODST {:.0} s, FA {}",
        odst_pt.threshold,
        odst_pt.confusion.odst(10.0, 0.004),
        odst_pt.confusion.false_alarms()
    );

    // Persist the compiled XNOR model and prove the round trip.
    let path = std::env::temp_dir().join("brnn_demo_model.brnn");
    let model = detector.packed().expect("trained").clone();
    save_model(&path, &model).expect("save model");
    let restored = load_model(&path).expect("load model");
    let probe = detector.clip_to_tensor(images[0]);
    let batch = hotspot_tensor::Tensor::stack(std::slice::from_ref(&probe));
    assert_eq!(model.forward(&batch), restored.forward(&batch));
    println!(
        "\nmodel saved to {} ({} bytes) and reloaded bit-identically",
        path.display(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );
    let _ = std::fs::remove_file(&path);
}
