//! Quickstart: generate a small ICCAD-2012-like dataset, train the
//! paper's BNN detector, and report Table-1/Eq-1..3 metrics.
//!
//! ```text
//! cargo run --release -p hotspot-core --example quickstart
//! ```

use hotspot_core::{
    evaluate, BnnDetector, BnnTrainConfig, DatasetSpec, HotspotDetector, HotspotOracle,
    OpticalModel,
};

fn main() {
    // 1. A scaled-down dataset with the paper's class ratios
    //    (Table 2 scaled to ~1%), labelled by lithography simulation.
    println!("generating dataset (litho-simulating every clip)...");
    let oracle = HotspotOracle::new(OpticalModel::default());
    let data = DatasetSpec::iccad2012_like().scaled(0.01).build(&oracle);
    let (train_hs, train_nhs) = data.train_counts();
    let (test_hs, test_nhs) = data.test_counts();
    println!("  train: {train_hs} hotspots / {train_nhs} non-hotspots");
    println!("  test:  {test_hs} hotspots / {test_nhs} non-hotspots");

    // 2. Train the binarized residual network (Algorithm 1 + biased
    //    fine-tune), then compile it to the XNOR inference engine.
    println!("training the BNN detector...");
    let mut config = BnnTrainConfig::bench();
    config.verbose = true;
    let mut detector = BnnDetector::new(config);
    detector.fit(&data.train);

    // 3. Evaluate with the paper's metrics.
    let result = evaluate(&detector, &data.test);
    println!("\nconfusion matrix (paper Table 1):");
    println!("{}", result.confusion);
    println!(
        "\naccuracy (Eq. 1):    {:.1}%",
        100.0 * result.confusion.accuracy()
    );
    println!("false alarms (Eq. 2): {}", result.confusion.false_alarms());
    println!("inference runtime:    {:.2?}", result.runtime);
    println!(
        "ODST (Eq. 3, t_ls = 10 s): {:.0} s",
        result.odst_seconds(10.0)
    );
}
