//! Prints the paper's 12-layer binarized residual architecture
//! (Figure 2): per-layer output shapes, parameter counts, and binary
//! vs. float operation counts.
//!
//! ```text
//! cargo run --release -p hotspot-core --example architecture
//! ```

use hotspot_bnn::{BnnResNet, NetConfig};
use hotspot_nn::Layer;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = NetConfig::paper_12layer();
    let mut rng = StdRng::seed_from_u64(0);
    let net = BnnResNet::new(&config, &mut rng);

    println!("{}", net.describe());
    println!(
        "input: 1×{0}×{0} binary layout clip (l_s = {0}, paper §3.4.1)\n",
        config.input_size
    );
    println!(
        "{:<14} {:>16} {:>12} {:>14} {:>12}",
        "layer", "output shape", "params", "binary MACs", "float MACs"
    );
    println!("{}", "-".repeat(74));
    let mut total_params = 0usize;
    let mut total_bin = 0u64;
    let mut total_float = 0u64;
    for row in net.summary() {
        let shape = row
            .output_shape
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("×");
        println!(
            "{:<14} {:>16} {:>12} {:>14} {:>12}",
            row.name, shape, row.params, row.binary_ops, row.float_ops
        );
        total_params += row.params;
        total_bin += row.binary_ops;
        total_float += row.float_ops;
    }
    println!("{}", "-".repeat(74));
    println!(
        "{:<14} {:>16} {:>12} {:>14} {:>12}",
        "total", "", total_params, total_bin, total_float
    );

    // The crux of the paper: binary MACs collapse 64-to-1 via
    // XNOR+popcount, so the effective op count is tiny.
    let effective = total_bin / 64 + total_float;
    println!(
        "\nbinary MACs execute 64/word via XNOR+popcount: {total_bin} → {} word-ops",
        total_bin / 64
    );
    println!(
        "effective ops vs an all-float network of the same shape: {effective} vs {}  ({:.1}× fewer)",
        total_bin + total_float,
        (total_bin + total_float) as f64 / effective as f64
    );
    println!(
        "\nweight storage: {} binary weights = {} KiB packed (vs {} KiB float)",
        total_params,
        total_params / 8 / 1024,
        total_params * 4 / 1024
    );
    println!(
        "\nweight layers: {} (11 binary convolutions + 1 dense)",
        config.layer_count()
    );
}
