//! Inspects the lithography simulator on a tip-to-tip gap sweep: shows
//! where the hotspot oracle starts firing and why, with aerial-image
//! cross sections.
//!
//! ```text
//! cargo run --release -p hotspot-core --example litho_inspect
//! ```

use hotspot_core::{HotspotOracle, Layout, OpticalModel, Rect};
use hotspot_litho_sim::{aerial_image, ProcessCorner};

fn main() {
    let model = OpticalModel::default();
    let oracle = HotspotOracle::new(model);
    let window = Rect::new(0, 0, 1280, 1280);

    println!(
        "optical model: sigma {} nm, threshold {}, dose latitude ±{}%",
        model.sigma_nm,
        model.threshold,
        model.dose_latitude * 100.0
    );
    println!("\ntip-to-tip gap sweep (two 240 nm-wide wires):\n");
    println!(
        "{:>8} {:>14} {:>10} verdict",
        "gap(nm)", "mid intensity", "threshold"
    );

    for gap in [20i64, 40, 60, 80, 120, 200, 300] {
        let layout = Layout::from_rects([
            Rect::new(100, 520, 640 - gap / 2, 760),
            Rect::new(640 + gap - gap / 2, 520, 1180, 760),
        ]);
        let report = oracle.analyze(&layout, window);
        // Mid-gap intensity at the over-exposure corner, where
        // bridging appears first.
        let design = oracle.raster().rasterize(&layout, window);
        let intensity = aerial_image(&design, &model, ProcessCorner::DosePlus);
        let mid = intensity[64 * 128 + 64];
        let verdict = if report.is_hotspot() {
            format!("HOTSPOT {:?}", report.defects())
        } else {
            "clean".to_string()
        };
        println!(
            "{:>8} {:>14.3} {:>10.3} {}",
            gap,
            mid,
            model.threshold_at(ProcessCorner::DosePlus),
            verdict
        );
    }

    println!("\nline-width sweep (isolated horizontal wire):\n");
    println!("{:>10} verdict", "width(nm)");
    for width in [20i64, 40, 60, 80, 100, 140] {
        let layout = Layout::from_rects([Rect::new(
            100,
            640 - width / 2,
            1180,
            640 + width - width / 2,
        )]);
        let report = oracle.analyze(&layout, window);
        let verdict = if report.is_hotspot() {
            format!("HOTSPOT {:?}", report.defects())
        } else {
            "clean".to_string()
        };
        println!("{width:>10} {verdict}");
    }

    // Render one aerial cross-section for intuition.
    println!("\naerial-intensity cross section through a 40 nm tip gap (DosePlus):");
    let layout = Layout::from_rects([
        Rect::new(100, 520, 620, 760),
        Rect::new(660, 520, 1180, 760),
    ]);
    let design = oracle.raster().rasterize(&layout, window);
    let intensity = aerial_image(&design, &model, ProcessCorner::DosePlus);
    let thr = model.threshold_at(ProcessCorner::DosePlus);
    let row = 64;
    print!("  ");
    for x in (40..90).step_by(1) {
        let v = intensity[row * 128 + x] as f64;
        print!(
            "{}",
            if v >= thr {
                '#'
            } else if v >= 0.5 * thr {
                '+'
            } else {
                '.'
            }
        );
    }
    println!("\n  (# prints, + marginal, . dark — columns 40–90 of row 64)");
}
