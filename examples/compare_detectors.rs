//! Trains all four detectors of the paper's Table 3 on a small
//! synthetic dataset and prints a mini version of the table.
//!
//! ```text
//! cargo run --release -p hotspot-core --example compare_detectors
//! ```
//!
//! For the full-scale regeneration, use the benchmark harness:
//! `cargo run --release -p hotspot-bench --bin tables -- --table 3`.

use hotspot_core::{
    evaluate, AdaBoostHotspotDetector, BnnDetector, BnnTrainConfig, CcsHotspotDetector,
    DatasetSpec, DctCnnHotspotDetector, HotspotDetector, HotspotOracle, OpticalModel, RocCurve,
};
use std::time::Instant;

fn main() {
    println!("generating dataset (Table 2 scaled to 2%)...");
    let oracle = HotspotOracle::new(OpticalModel::default());
    let data = DatasetSpec::iccad2012_like().scaled(0.02).build(&oracle);
    let (hs, nhs) = data.train_counts();
    println!("  train {hs}/{nhs}, test {:?}\n", data.test_counts());

    let mut detectors: Vec<Box<dyn HotspotDetector>> = vec![
        Box::new(AdaBoostHotspotDetector::new()),
        Box::new(CcsHotspotDetector::new()),
        Box::new(DctCnnHotspotDetector::new()),
        Box::new(BnnDetector::new(BnnTrainConfig::bench())),
    ];

    println!(
        "{:<18} {:>6} {:>12} {:>10} {:>9} {:>7} {:>10}",
        "Method", "FA#", "Runtime(ms)", "ODST(s)", "Accu(%)", "AUC", "train(s)"
    );
    println!("{}", "-".repeat(78));
    let images: Vec<_> = data.test.iter().map(|c| &c.image).collect();
    let labels: Vec<bool> = data.test.iter().map(|c| c.hotspot).collect();
    for det in &mut detectors {
        let t0 = Instant::now();
        det.fit(&data.train);
        let train_time = t0.elapsed();
        let result = evaluate(det.as_ref(), &data.test);
        let scores = det.score_batch(&images);
        let auc = RocCurve::from_scores(&scores, &labels).auc();
        println!(
            "{:<18} {:>6} {:>12.1} {:>10.0} {:>9.1} {:>7.3} {:>10.1}",
            det.name(),
            result.confusion.false_alarms(),
            result.runtime.as_secs_f64() * 1e3,
            result.odst_seconds(10.0),
            100.0 * result.confusion.accuracy(),
            auc,
            train_time.as_secs_f64(),
        );
    }
    println!("\n(shape, not absolute numbers, is the claim: the BNN should match or");
    println!(" beat the DCT-CNN's accuracy while classifying much faster.)");
}
