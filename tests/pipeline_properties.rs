//! Property-based tests spanning the whole pipeline.

use hotspot_core::{BitImage, ConfusionMatrix, HotspotOracle, Layout, OpticalModel, Rect};
use hotspot_layout_gen::{decode_layout, encode_layout, ClipGenerator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The oracle's label is invariant under mirroring the clip —
    /// lithography does not care about layout chirality, and this is
    /// exactly why the paper's flip augmentation is label-preserving.
    #[test]
    fn oracle_label_is_flip_invariant(seed in 0u64..200) {
        let gen = ClipGenerator::new(640); // smaller clips: faster sim
        let mut rng = StdRng::seed_from_u64(seed);
        let clip = gen.generate(&mut rng);
        let oracle = HotspotOracle::new(OpticalModel::default());
        let window = gen.window();
        let label = oracle.label(&clip.layout, window);
        let mirrored = clip.layout.mirror_x(320);
        prop_assert_eq!(oracle.label(&mirrored, window), label);
        let mirrored_y = clip.layout.mirror_y(320);
        prop_assert_eq!(oracle.label(&mirrored_y, window), label);
    }

    /// Layout text serialization round-trips for arbitrary rect soups.
    #[test]
    fn layout_serialization_round_trips(
        rects in prop::collection::vec((0i64..2000, 0i64..2000, 1i64..500, 1i64..500), 0..20)
    ) {
        let layout = Layout::from_rects(
            rects.into_iter().map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h)),
        );
        let text = encode_layout(&layout);
        let back = decode_layout(&text).expect("round trip");
        prop_assert_eq!(back, layout);
    }

    /// Confusion-matrix counts always conserve the number of examples,
    /// and accuracy/false alarms stay within their ranges.
    #[test]
    fn confusion_conserves_counts(outcomes in prop::collection::vec((any::<bool>(), any::<bool>()), 1..300)) {
        let mut cm = ConfusionMatrix::new();
        for &(actual, pred) in &outcomes {
            cm.record(actual, pred);
        }
        prop_assert_eq!(cm.total() as usize, outcomes.len());
        prop_assert!((0.0..=1.0).contains(&cm.accuracy()));
        prop_assert!(cm.false_alarms() <= cm.total());
        let odst = cm.odst(10.0, 0.001);
        prop_assert!(odst >= 0.0);
        // ODST is monotone in t_ls when anything is flagged.
        if cm.tp + cm.fp > 0 {
            prop_assert!(cm.odst(20.0, 0.001) > odst);
        }
    }

    /// Rasterizing a generated clip never produces more set pixels than
    /// the clip's covered area implies (pixel-centre sampling bound).
    #[test]
    fn raster_density_tracks_layout_density(seed in 0u64..100) {
        let gen = ClipGenerator::new(640);
        let mut rng = StdRng::seed_from_u64(seed);
        let clip = gen.generate(&mut rng);
        let window = gen.window();
        let raster = hotspot_core::Raster::new(10);
        let img = raster.rasterize(&clip.layout, window);
        let raster_density = img.density();
        let layout_density = clip.layout.density(window);
        // Pixel-centre sampling of Manhattan shapes at 10 nm resolution
        // tracks the true density closely.
        prop_assert!((raster_density - layout_density).abs() < 0.1,
            "raster {} vs layout {}", raster_density, layout_density);
    }

    /// Down-sampling a clip image preserves emptiness and fullness.
    #[test]
    fn downsample_preserves_extremes(fill in any::<bool>()) {
        let mut img = BitImage::new(128, 128);
        if fill {
            for y in 0..128 {
                img.fill_row_span(y, 0, 128);
            }
        }
        let d = img.downsample(4, 0.5);
        prop_assert_eq!(d.count_ones(), if fill { 32 * 32 } else { 0 });
    }
}
