//! End-to-end integration tests: generate → label → train → evaluate,
//! for every detector in the Table-3 comparison.

use hotspot_core::{
    evaluate, AdaBoostHotspotDetector, BnnDetector, BnnTrainConfig, CcsHotspotDetector,
    DatasetSpec, DctCnnHotspotDetector, HotspotDetector, HotspotOracle, OpticalModel, SplitDataset,
};

fn tiny_dataset() -> &'static SplitDataset {
    use std::sync::OnceLock;
    static DATA: OnceLock<SplitDataset> = OnceLock::new();
    DATA.get_or_init(|| {
        let spec = DatasetSpec {
            train_hs: 8,
            train_nhs: 24,
            test_hs: 6,
            test_nhs: 18,
            extent: 1280,
            seed: 424242,
        };
        spec.build(&HotspotOracle::new(OpticalModel::default()))
    })
}

/// The dataset builder respects its quotas and produces 128×128 clips.
#[test]
fn dataset_has_requested_statistics() {
    let data = tiny_dataset();
    assert_eq!(data.train_counts(), (8, 24));
    assert_eq!(data.test_counts(), (6, 18));
    for clip in data.train.iter().chain(&data.test) {
        assert_eq!(clip.image.width(), 128);
        assert_eq!(clip.image.height(), 128);
        assert!(clip.image.count_ones() > 0, "blank clip generated");
    }
}

/// Every detector trains and does meaningfully better than the
/// all-hotspot / all-clean degenerate strategies on the *training*
/// distribution (tiny data, so we check train-side separability).
#[test]
fn all_detectors_train_and_separate() {
    let data = tiny_dataset();
    let detectors: Vec<Box<dyn HotspotDetector>> = vec![
        Box::new(AdaBoostHotspotDetector::with_params(8, 24)),
        Box::new(CcsHotspotDetector::new()),
        Box::new(DctCnnHotspotDetector::new()),
        Box::new(BnnDetector::new(small_bnn_config())),
    ];
    for mut det in detectors {
        det.fit(&data.train);
        let result = evaluate(det.as_ref(), &data.train);
        let cm = result.confusion;
        // Better than labelling everything one class: some true
        // positives AND some true negatives.
        assert!(cm.tp > 0, "{}: no hotspots detected", det.name());
        assert!(cm.tn > 0, "{}: everything flagged", det.name());
        let balanced = (cm.accuracy() + cm.tn as f64 / (cm.tn + cm.fp).max(1) as f64) / 2.0;
        assert!(
            balanced > 0.6,
            "{}: balanced accuracy {balanced:.2} on training data",
            det.name()
        );
    }
}

fn small_bnn_config() -> BnnTrainConfig {
    let mut cfg = BnnTrainConfig::fast();
    // The dataset clips are 128×128; fast() expects 32×32 inputs, which
    // clip_to_tensor reaches by 4× down-sampling.
    cfg.epochs = 10;
    cfg.verbose = false;
    cfg
}

/// The BNN's packed XNOR path and the float training path implement
/// the same function under shared scaling: their predictions agree.
#[test]
fn bnn_packed_equals_float_inference() {
    let data = tiny_dataset();
    let mut det = BnnDetector::new(small_bnn_config());
    det.fit(&data.train);
    let images: Vec<_> = data.test.iter().map(|c| &c.image).collect();
    let float_preds = det.predict_batch_float(&images);
    let packed_preds = det.predict_batch_packed(&images);
    assert_eq!(float_preds, packed_preds);
}

/// ODST accounting: more false alarms must mean more simulation time.
#[test]
fn odst_increases_with_false_alarms() {
    let data = tiny_dataset();

    struct FlagAll;
    impl HotspotDetector for FlagAll {
        fn name(&self) -> &str {
            "flag-all"
        }
        fn fit(&mut self, _c: &[hotspot_core::LabeledClip]) {}
        fn predict_batch(&self, images: &[&hotspot_core::BitImage]) -> Vec<bool> {
            vec![true; images.len()]
        }
    }
    struct FlagNone;
    impl HotspotDetector for FlagNone {
        fn name(&self) -> &str {
            "flag-none"
        }
        fn fit(&mut self, _c: &[hotspot_core::LabeledClip]) {}
        fn predict_batch(&self, images: &[&hotspot_core::BitImage]) -> Vec<bool> {
            vec![false; images.len()]
        }
    }

    let all = evaluate(&FlagAll, &data.test);
    let none = evaluate(&FlagNone, &data.test);
    assert!(all.odst_seconds(10.0) > none.odst_seconds(10.0));
    // Flag-all achieves perfect recall with maximal false alarms.
    assert_eq!(all.confusion.accuracy(), 1.0);
    assert_eq!(all.confusion.false_alarms(), 18);
    assert_eq!(none.confusion.accuracy(), 0.0);
    assert_eq!(none.confusion.false_alarms(), 0);
}

/// Training is reproducible: the same config and data give the same
/// predictions.
#[test]
fn bnn_training_is_deterministic() {
    let data = tiny_dataset();
    let images: Vec<_> = data.test.iter().map(|c| &c.image).collect();

    let mut a = BnnDetector::new(small_bnn_config());
    a.fit(&data.train);
    let pa = a.predict_batch(&images);

    let mut b = BnnDetector::new(small_bnn_config());
    b.fit(&data.train);
    let pb = b.predict_batch(&images);

    assert_eq!(pa, pb);
}
