//! Golden-fixture scan test: a chip with known embedded hotspot sites
//! must be found by the streaming scanner at least as reliably as
//! per-clip classification finds the same clips, with merged region
//! centres localized to within one stride of each site centre.
//!
//! The fixture is constructed so ground truth is *exact*: site cells
//! hold clips that are both oracle-labelled hotspots and
//! detector-positive; background cells are oracle-clean and
//! detector-negative.  Scanning at stride = window over the
//! downsampled chip therefore sees each cell exactly as per-clip
//! inference does, and any disagreement is a scanner defect, not
//! model noise.

use hotspot_bnn::{ScanConfig, Scanner};
use hotspot_core::{
    BnnDetector, BnnTrainConfig, DatasetSpec, HotspotDetector, HotspotOracle, OpticalModel,
};
use hotspot_geometry::BitImage;
use hotspot_layout_gen::{ChipBuilder, ClipGenerator};
use hotspot_tensor::Workspace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Down-sampling factor from 1280 nm / 10 nm clips (128 px) to the
/// fast config's 32-pixel input.
const DOWN: usize = 4;
const CELL_PX: usize = 128;
const WINDOW: usize = CELL_PX / DOWN;

fn trained_detector() -> BnnDetector {
    let spec = DatasetSpec {
        train_hs: 8,
        train_nhs: 24,
        test_hs: 6,
        test_nhs: 18,
        extent: 1280,
        seed: 424242,
    };
    let data = spec.build(&HotspotOracle::new(OpticalModel::default()));
    let mut cfg = BnnTrainConfig::fast();
    cfg.epochs = 10;
    cfg.verbose = false;
    let mut det = BnnDetector::new(cfg);
    det.fit(&data.train);
    det
}

/// Draws clips until `want` matches both the litho oracle and the
/// trained detector — the double-agreement that makes the fixture's
/// ground truth exact.
fn agreed_clip(
    clips: &ClipGenerator,
    oracle: &HotspotOracle,
    det: &BnnDetector,
    rng: &mut StdRng,
    want: bool,
) -> (BitImage, hotspot_geometry::Layout) {
    for _ in 0..800 {
        let clip = clips.generate(rng);
        if oracle.label(&clip.layout, clips.window()) != want {
            continue;
        }
        let img = oracle.raster().rasterize(&clip.layout, clips.window());
        if det.predict_batch_packed(&[&img])[0] != want {
            continue;
        }
        return (img, clip.layout);
    }
    panic!("no clip with oracle == detector == {want} within the sampling budget");
}

#[test]
fn scanner_finds_every_embedded_site() {
    let det = trained_detector();
    let oracle = HotspotOracle::new(OpticalModel::default());
    let clips = ClipGenerator::new(1280);
    let mut rng = StdRng::seed_from_u64(20260808);

    // 4×4 cells; sites on the even checkerboard so regions stay
    // separate at stride == window.
    let site_cells = [(0usize, 0usize), (2, 0), (0, 2), (2, 2)];
    let mut builder = ChipBuilder::new(4, 4, CELL_PX, 10);
    let mut site_images: Vec<BitImage> = Vec::new();
    for cy in 0..4 {
        for cx in 0..4 {
            let is_site = site_cells.contains(&(cx, cy));
            let (img, layout) = agreed_clip(&clips, &oracle, &det, &mut rng, is_site);
            if is_site {
                builder.place_site((cx, cy), &img, &layout);
                site_images.push(img);
            } else {
                builder.place((cx, cy), &img, &layout);
            }
        }
    }
    let chip = builder.finish();
    assert_eq!(chip.sites.len(), site_cells.len());

    // Per-clip recall on the site clips (the baseline the scanner
    // must not undercut).  By construction this is 1.0.
    let refs: Vec<&BitImage> = site_images.iter().collect();
    let per_clip = det.predict_batch_packed(&refs);
    let clip_recall = per_clip.iter().filter(|&&p| p).count() as f64 / per_clip.len() as f64;
    assert_eq!(clip_recall, 1.0, "fixture construction broke");

    // Scan the chip at the detector's input scale: window == cell,
    // stride == window, so windows land exactly on cells.
    let packed = det.packed().expect("trained detector has a packed model");
    let scanner = Scanner::new(packed, WINDOW, ScanConfig::new(WINDOW));
    let small = chip.image.downsample(DOWN, 1e-9);
    let mut ws = Workspace::new();
    let report = scanner.scan(&small, &mut ws);
    assert_eq!(report.windows, 16);

    // Site recall: a site counts as found when some merged region's
    // centre lies within one stride of the site centre.
    let stride = scanner.config().stride;
    let mut found = 0usize;
    for site in &chip.sites {
        let (scx, scy) = (site.center_px.0 / DOWN, site.center_px.1 / DOWN);
        let hit = report.regions.iter().any(|r| {
            let (rcx, rcy) = r.center();
            rcx.abs_diff(scx) <= stride && rcy.abs_diff(scy) <= stride
        });
        if hit {
            found += 1;
        }
    }
    let scan_recall = found as f64 / chip.sites.len() as f64;
    assert!(
        scan_recall >= clip_recall,
        "scanner recall {scan_recall} fell below per-clip recall {clip_recall}: {:?}",
        report.regions
    );

    // With detector-negative background, the region set is exactly
    // the sites: one region per site, centred on its cell.
    assert_eq!(
        report.regions.len(),
        chip.sites.len(),
        "background windows fired: {:?}",
        report.regions
    );
    for site in &chip.sites {
        let (scx, scy) = (site.center_px.0 / DOWN, site.center_px.1 / DOWN);
        let nearest = report
            .regions
            .iter()
            .map(|r| {
                let (rcx, rcy) = r.center();
                rcx.abs_diff(scx) + rcy.abs_diff(scy)
            })
            .min()
            .expect("non-empty regions");
        assert!(
            nearest <= stride,
            "site at ({scx}, {scy}) localized {nearest} px away"
        );
    }
}
