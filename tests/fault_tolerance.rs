//! Fault-tolerance integration tests: artifact corruption is always a
//! typed error, checkpointed training resumes bit-identically, and the
//! divergence watchdog rolls back NaN epochs instead of shipping a
//! poisoned model.

use hotspot_core::checkpoint::snapshot_net;
use hotspot_core::persist::{
    load_checkpoint, load_dataset, load_model, save_checkpoint, save_dataset, save_model,
};
use hotspot_core::{
    latest_checkpoint, BitImage, BnnDetector, BnnTrainConfig, LabeledClip, PackedBnn,
    PatternFamily, SplitDataset, TrainError,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Dense vs. sparse stripe clips: a learnable toy problem.
fn toy_clips(n: usize, side: usize) -> Vec<LabeledClip> {
    (0..n)
        .map(|i| {
            let hotspot = i % 2 == 0;
            let mut img = BitImage::new(side, side);
            let step = if hotspot { 4 } else { 12 };
            let mut y = i % 3;
            while y < side {
                img.fill_row_span(y, 0, side);
                y += step;
            }
            LabeledClip {
                image: img,
                hotspot,
                family: PatternFamily::LineSpace,
            }
        })
        .collect()
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("brnn_ft_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Collects the network's parameters and state buffers for exact
/// comparison between two trained detectors.
fn weights_of(det: &BnnDetector) -> (Vec<hotspot_core::Tensor>, Vec<Vec<f32>>) {
    let mut guard = det.network().expect("trained");
    snapshot_net(&mut guard)
}

// ---------------------------------------------------------------------
// Resume determinism
// ---------------------------------------------------------------------

#[test]
fn interrupted_then_resumed_matches_uninterrupted_run() {
    let clips = toy_clips(24, 32);
    let dir = scratch_dir("resume");
    let mut cfg = BnnTrainConfig::fast();
    cfg.epochs = 4;
    cfg.bias_epochs = 1;
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.checkpoint_every = 1;

    // Reference: one uninterrupted run, checkpointing every epoch.
    let mut full = BnnDetector::new(cfg.clone());
    full.try_fit(&clips).expect("uninterrupted run");
    let full_weights = weights_of(&full);

    // "Kill" after epoch 2: a fresh process would find epoch0002.brnnck
    // on disk and continue from there.
    let mut resumed = BnnDetector::new(cfg.clone());
    resumed
        .resume(&dir.join("epoch0002.brnnck"), &clips)
        .expect("resume");

    // The trajectory (losses, learning rates, phases) is bit-identical;
    // wall-clock epoch durations are machine-dependent and excluded.
    assert_eq!(resumed.history().len(), full.history().len());
    for (i, (r, f)) in resumed.history().iter().zip(full.history()).enumerate() {
        assert!(
            r.same_trajectory(f),
            "epoch {i} trajectory diverged: {r:?} vs {f:?}"
        );
        assert!(r.duration_secs.is_finite() && r.duration_secs >= 0.0);
    }
    // The first two epochs were restored from the checkpoint, so their
    // recorded durations are exactly the original run's.
    for (r, f) in resumed.history()[..2].iter().zip(&full.history()[..2]) {
        assert_eq!(r.duration_secs, f.duration_secs);
    }
    assert!(resumed.total_training_secs() >= 0.0);
    let resumed_weights = weights_of(&resumed);
    assert_eq!(resumed_weights.0, full_weights.0, "parameters diverged");
    assert_eq!(
        resumed_weights.1, full_weights.1,
        "batch-norm state diverged"
    );

    // latest_checkpoint finds the final epoch's file.
    let latest = latest_checkpoint(&dir).expect("checkpoints written");
    assert!(latest.ends_with("epoch0005.brnnck"), "got {latest:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_mismatched_configuration() {
    let clips = toy_clips(16, 32);
    let dir = scratch_dir("fingerprint");
    let mut cfg = BnnTrainConfig::fast();
    cfg.epochs = 2;
    cfg.bias_epochs = 0;
    cfg.checkpoint_dir = Some(dir.clone());
    let mut det = BnnDetector::new(cfg.clone());
    det.try_fit(&clips).expect("train");
    let ck = latest_checkpoint(&dir).expect("checkpoint");

    // Same architecture, different trajectory (seed): refused.
    let mut other_cfg = cfg.clone();
    other_cfg.seed += 1;
    let mut other = BnnDetector::new(other_cfg);
    let err = other.resume(&ck, &clips).unwrap_err();
    assert!(
        matches!(err, TrainError::Checkpoint(_)),
        "expected fingerprint rejection, got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Divergence watchdog
// ---------------------------------------------------------------------

#[test]
fn injected_nan_rolls_back_and_recovers() {
    let clips = toy_clips(24, 32);
    let mut cfg = BnnTrainConfig::fast();
    cfg.epochs = 3;
    cfg.bias_epochs = 0;
    cfg.fault_nan_epoch = Some(1);
    cfg.max_rollbacks = 3;
    let mut det = BnnDetector::new(cfg);
    det.try_fit(&clips).expect("watchdog must absorb the NaN");
    assert_eq!(det.rollbacks(), 1, "exactly one rollback expected");
    assert_eq!(det.history().len(), 3);
    assert!(
        det.history()
            .iter()
            .all(|e| e.train_loss.is_finite() && e.val_loss.is_finite()),
        "history carries no non-finite losses"
    );
    // Every weight in the shipped model is finite.
    let (params, state) = weights_of(&det);
    assert!(params
        .iter()
        .all(|t| t.as_slice().iter().all(|v| v.is_finite())));
    assert!(state.iter().all(|s| s.iter().all(|v| v.is_finite())));
    // The retried epoch ran at a halved learning rate.
    assert!(
        det.history()[1].learning_rate <= det.history()[0].learning_rate / 2.0 + f32::EPSILON,
        "lr not halved: {:?}",
        det.history()
    );
}

#[test]
fn exhausted_rollback_budget_is_a_typed_divergence() {
    let clips = toy_clips(16, 32);
    let mut cfg = BnnTrainConfig::fast();
    cfg.epochs = 2;
    cfg.bias_epochs = 0;
    cfg.fault_nan_epoch = Some(0);
    cfg.max_rollbacks = 0;
    let mut det = BnnDetector::new(cfg);
    match det.try_fit(&clips) {
        Err(TrainError::Diverged { epoch, rollbacks }) => {
            assert_eq!(epoch, 0);
            assert_eq!(rollbacks, 0);
        }
        other => panic!("expected Diverged, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Corruption property test
// ---------------------------------------------------------------------

/// One pristine on-disk copy of each artifact kind: model, dataset,
/// checkpoint.
fn artifacts() -> &'static [Vec<u8>; 3] {
    static ARTIFACTS: OnceLock<[Vec<u8>; 3]> = OnceLock::new();
    ARTIFACTS.get_or_init(|| {
        let dir = scratch_dir("pristine");
        let clips = toy_clips(16, 32);
        let mut cfg = BnnTrainConfig::fast();
        cfg.epochs = 1;
        cfg.bias_epochs = 0;
        cfg.checkpoint_dir = Some(dir.clone());
        let mut det = BnnDetector::new(cfg);
        det.try_fit(&clips).expect("train");

        let model_path = dir.join("model.brnn");
        let packed: &PackedBnn = det.packed().expect("trained");
        save_model(&model_path, packed).expect("save model");

        let ds = SplitDataset {
            train: clips[..12].to_vec(),
            test: clips[12..].to_vec(),
        };
        let ds_path = dir.join("dataset.brnn");
        save_dataset(&ds_path, &ds).expect("save dataset");

        let ck_path = latest_checkpoint(&dir).expect("checkpoint");
        // Round-trip once so the fixture is known-good before mutation.
        let ck = load_checkpoint(&ck_path).expect("pristine checkpoint loads");
        save_checkpoint(&ck_path, &ck).expect("re-save checkpoint");

        let out = [
            std::fs::read(&model_path).expect("read model"),
            std::fs::read(&ds_path).expect("read dataset"),
            std::fs::read(&ck_path).expect("read checkpoint"),
        ];
        let _ = std::fs::remove_dir_all(&dir);
        out
    })
}

fn load_any(kind: usize, path: &std::path::Path) -> Result<(), hotspot_core::PersistError> {
    match kind {
        0 => load_model(path).map(|_| ()),
        1 => load_dataset(path).map(|_| ()),
        _ => load_checkpoint(path).map(|_| ()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any single bit flip or truncation of a saved artifact makes its
    /// load return `Err` — never a panic, never a silent success.
    #[test]
    fn corrupted_artifacts_never_load(
        kind in 0usize..3,
        pos in any::<u64>(),
        bit in 0u8..8,
        truncate in any::<bool>(),
    ) {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let pristine = &artifacts()[kind];
        let mutated = if truncate {
            pristine[..pos as usize % pristine.len()].to_vec()
        } else {
            let mut m = pristine.clone();
            let i = pos as usize % m.len();
            m[i] ^= 1 << bit;
            m
        };
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "brnn_ft_corrupt_{}_{case}",
            std::process::id()
        ));
        std::fs::write(&path, &mutated).expect("write mutated artifact");
        let result = load_any(kind, &path);
        let _ = std::fs::remove_file(&path);
        prop_assert!(
            result.is_err(),
            "kind {kind}: corrupted artifact loaded successfully \
             (truncate={truncate}, pos={pos}, bit={bit})"
        );
    }
}

/// The pristine fixtures themselves load fine — the property above is
/// rejecting the corruption, not the format.
#[test]
fn pristine_artifacts_load() {
    let dir = scratch_dir("pristine_check");
    for (kind, bytes) in artifacts().iter().enumerate() {
        let path = dir.join(format!("artifact{kind}"));
        std::fs::write(&path, bytes).expect("write");
        load_any(kind, &path).expect("pristine artifact must load");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
