//! Telemetry integration: training emits structured events with the
//! right fields, profiled packed inference reports every layer without
//! changing the scores, and the tracing facade stays consistent when
//! records arrive from rayon worker threads.
//!
//! The trace subscriber is process-global, so every test that installs
//! one serialises through [`global_lock`].

use hotspot_core::{BitImage, BnnDetector, BnnTrainConfig, HotspotDetector, LabeledClip};
use hotspot_layout_gen::PatternFamily;
use hotspot_telemetry::subscribers::{CollectingSubscriber, Record};
use hotspot_telemetry::{event, metrics, span, trace, Value};
use rayon::prelude::*;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

fn global_lock() -> MutexGuard<'static, ()> {
    static GLOBAL_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    GLOBAL_LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

fn with_collector(f: impl FnOnce()) -> Vec<Record> {
    let sink = Arc::new(CollectingSubscriber::new());
    let old = trace::set_subscriber(sink.clone());
    f();
    match old {
        Some(prev) => {
            trace::set_subscriber(prev);
        }
        None => {
            trace::clear_subscriber();
        }
    }
    sink.records()
}

/// Dense vs. sparse stripe clips: a tiny learnable problem.
fn toy_clips(n: usize, side: usize) -> Vec<LabeledClip> {
    (0..n)
        .map(|i| {
            let hotspot = i % 2 == 0;
            let mut img = BitImage::new(side, side);
            let step = if hotspot { 4 } else { 12 };
            let mut y = i % 3;
            while y < side {
                img.fill_row_span(y, 0, side);
                y += step;
            }
            LabeledClip {
                image: img,
                hotspot,
                family: PatternFamily::LineSpace,
            }
        })
        .collect()
}

fn field<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

#[test]
fn training_emits_epoch_events_with_loss_and_lr() {
    let _guard = global_lock();
    let clips = toy_clips(24, 32);
    let mut cfg = BnnTrainConfig::fast();
    cfg.epochs = 2;
    cfg.bias_epochs = 1;
    let mut history_len = 0;
    let records = with_collector(|| {
        let mut det = BnnDetector::new(cfg);
        det.try_fit(&clips).expect("train");
        history_len = det.history().len();
    });

    let epoch_events: Vec<_> = records
        .iter()
        .filter_map(|r| match r {
            Record::Event { name, fields, .. } if name == "train.epoch" => Some(fields),
            _ => None,
        })
        .collect();
    assert_eq!(epoch_events.len(), history_len, "one event per epoch");
    for (i, fields) in epoch_events.iter().enumerate() {
        assert_eq!(field(fields, "epoch"), Some(&Value::U64(i as u64)));
        for key in ["train_loss", "val_loss", "lr", "duration_secs"] {
            match field(fields, key) {
                Some(Value::F64(v)) => assert!(v.is_finite(), "{key} not finite"),
                other => panic!("epoch event missing {key}: {other:?}"),
            }
        }
    }
    // The last epoch is the biased fine-tune phase.
    assert_eq!(
        field(epoch_events[2], "biased"),
        Some(&Value::Bool(true)),
        "bias epoch flagged"
    );
    // Training is wrapped in train.fit with nested train.epoch spans.
    let fit_span = records.iter().find_map(|r| match r {
        Record::SpanStart { id, name, .. } if name == "train.fit" => Some(*id),
        _ => None,
    });
    let fit_id = fit_span.expect("train.fit span opened");
    let nested_epochs = records
        .iter()
        .filter(|r| {
            matches!(r, Record::SpanStart { parent, name, .. }
                if name == "train.epoch" && *parent == Some(fit_id))
        })
        .count();
    assert_eq!(nested_epochs, 3, "epoch spans nest under train.fit");
}

#[test]
fn rollback_event_reports_halved_lr() {
    let _guard = global_lock();
    let clips = toy_clips(16, 32);
    let mut cfg = BnnTrainConfig::fast();
    cfg.epochs = 2;
    cfg.bias_epochs = 0;
    cfg.fault_nan_epoch = Some(0);
    let records = with_collector(|| {
        let mut det = BnnDetector::new(cfg);
        det.try_fit(&clips).expect("watchdog absorbs the NaN");
    });
    let rollback = records
        .iter()
        .find_map(|r| match r {
            Record::Event { name, fields, .. } if name == "train.rollback" => Some(fields),
            _ => None,
        })
        .expect("rollback event emitted");
    assert_eq!(field(rollback, "epoch"), Some(&Value::U64(0)));
    assert_eq!(field(rollback, "rollback"), Some(&Value::U64(1)));
    match field(rollback, "lr") {
        Some(Value::F64(lr)) => assert!(*lr > 0.0 && lr.is_finite()),
        other => panic!("rollback event missing lr: {other:?}"),
    }
}

#[test]
fn profiled_parallel_inference_traces_consistently() {
    let _guard = global_lock();
    let clips = toy_clips(24, 32);
    let mut det = BnnDetector::new(BnnTrainConfig::fast());
    det.fit(&clips);
    // 200 images → 4 shards of SHARD=64, so rayon genuinely fans out.
    let many: Vec<BitImage> = (0..200).map(|i| clips[i % 24].image.clone()).collect();
    let images: Vec<&BitImage> = many.iter().collect();
    let plain = det.score_batch(&images);

    let mut profiled = Vec::new();
    let records = with_collector(|| {
        let (margins, prof) = det.profile_packed_inference(&images);
        profiled = margins;
        // Each of the 4 shards ran the full plan once.
        assert!(
            prof.report().iter().all(|s| s.calls == 4),
            "{:?}",
            prof.report()
        );
    });
    assert_eq!(profiled, plain, "profiling must not change the scores");

    // The inference span opened and closed exactly once, with no
    // orphaned records from the worker threads.
    let starts: Vec<_> = records
        .iter()
        .filter(|r| matches!(r, Record::SpanStart { name, .. } if name == "infer.packed_profiled"))
        .collect();
    assert_eq!(starts.len(), 1);
    let span_starts = records
        .iter()
        .filter(|r| matches!(r, Record::SpanStart { .. }))
        .count();
    let span_ends = records
        .iter()
        .filter(|r| matches!(r, Record::SpanEnd { .. }))
        .count();
    assert_eq!(span_starts, span_ends, "every span closes");
}

#[test]
fn spans_and_events_survive_rayon_fanout() {
    let _guard = global_lock();
    const ITEMS: usize = 64;
    let records = with_collector(|| {
        let _outer = span!("fanout.outer", items = ITEMS);
        let sum: u64 = (0..ITEMS)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|&i| {
                // Worker threads have their own span stacks: these
                // spans must NOT parent to fanout.outer (it lives on
                // the caller's thread), and nothing may be lost.
                let _sp = span!("fanout.worker", item = i);
                event!("fanout.tick", item = i);
                i as u64
            })
            .sum();
        assert_eq!(sum, (ITEMS as u64 * (ITEMS as u64 - 1)) / 2);
    });
    let outer_id = records
        .iter()
        .find_map(|r| match r {
            Record::SpanStart { id, name, .. } if name == "fanout.outer" => Some(*id),
            _ => None,
        })
        .expect("outer span");
    let worker_starts: Vec<_> = records
        .iter()
        .filter_map(|r| match r {
            Record::SpanStart { id, parent, name } if name == "fanout.worker" => {
                Some((*id, *parent))
            }
            _ => None,
        })
        .collect();
    assert_eq!(worker_starts.len(), ITEMS, "no worker span lost");
    // The rayon shim may run items on the caller thread (where the
    // outer span is open) or on spawned workers (where it is not);
    // either way a worker span can only parent to the outer span or to
    // nothing — never to another worker's span.
    for (id, parent) in &worker_starts {
        assert!(
            parent.is_none() || *parent == Some(outer_id),
            "worker span {id} has a cross-thread parent: {parent:?}"
        );
    }
    let events = records
        .iter()
        .filter(|r| matches!(r, Record::Event { name, .. } if name == "fanout.tick"))
        .count();
    assert_eq!(events, ITEMS, "no event lost under concurrency");
}

#[test]
fn windowed_quantiles_on_empty_window_return_none() {
    use hotspot_telemetry::{MockClock, WindowedHistogram};
    let clock = Arc::new(MockClock::new());
    let w = WindowedHistogram::with_clock(4, 1_000, &[10.0, 100.0], clock.clone());
    let snap = w.snapshot();
    assert_eq!(snap.count, 0);
    assert_eq!(snap.quantile(0.5), None);
    assert_eq!(snap.quantile(0.99), None);
    assert_eq!(w.rate_per_sec(), 0.0);

    // A window that *was* populated but has fully expired is empty too.
    w.observe(42.0);
    clock.advance(1_000 * 10);
    assert_eq!(w.snapshot().quantile(0.5), None, "expired slices dropped");
}

#[test]
fn windowed_quantiles_single_sample_pin_every_quantile() {
    use hotspot_telemetry::{MockClock, WindowedHistogram};
    let clock = Arc::new(MockClock::new());
    let w = WindowedHistogram::with_clock(4, 1_000, &[1.0, 8.0, 64.0], clock);
    w.observe(5.0);
    let snap = w.snapshot();
    assert_eq!(snap.count, 1);
    // One sample in the (1, 8] bucket: quantiles interpolate inside
    // that bucket (Prometheus-style), so every estimate stays within
    // its bounds, grows with q, and q = 1 reaches the upper bound.
    let mut prev = 1.0;
    for q in [0.01, 0.5, 0.99, 1.0] {
        let v = snap.quantile(q).expect("non-empty");
        assert!(v > 1.0 && v <= 8.0, "q={q} escaped the bucket: {v}");
        assert!(v >= prev, "quantiles must be monotone in q");
        prev = v;
    }
    assert_eq!(snap.quantile(1.0), Some(8.0));
}

#[test]
fn windowed_quantiles_all_same_value_collapse_to_one_bucket() {
    use hotspot_telemetry::{MockClock, WindowedHistogram};
    let clock = Arc::new(MockClock::new());
    let w = WindowedHistogram::with_clock(4, 1_000, &[1.0, 8.0, 64.0], clock);
    for _ in 0..1_000 {
        w.observe(3.0);
    }
    let snap = w.snapshot();
    assert_eq!(snap.count, 1_000);
    // Exactly one bucket holds all the mass, so every quantile estimate
    // is confined to that bucket's (1, 8] range.
    assert_eq!(snap.counts.iter().filter(|&&c| c > 0).count(), 1);
    for q in [0.05, 0.5, 0.95, 0.999] {
        let v = snap.quantile(q).expect("non-empty");
        assert!(v > 1.0 && v <= 8.0, "q={q} escaped the value's bucket: {v}");
    }
    assert_eq!(snap.quantile(1.0), Some(8.0));
}

#[test]
fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
    use hotspot_telemetry::{MetricsRegistry, MockClock, WindowedHistogram};
    // Cumulative histogram: a value exactly at a bound belongs to that
    // bound's bucket (Prometheus `le` semantics)...
    let registry = MetricsRegistry::new();
    let hist = registry.histogram("boundary_test", &[10.0, 100.0]);
    hist.observe(10.0); // at the first bound → bucket 0
    hist.observe(10.0 + f64::EPSILON * 16.0); // just above → bucket 1
    hist.observe(100.0); // at the last bound → bucket 1
    hist.observe(101.0); // beyond every bound → +∞ bucket
    let snap = hist.snapshot();
    assert_eq!(snap.counts, vec![1, 2, 1]);
    // ...and the windowed variant uses identical bucketing.
    let w = WindowedHistogram::with_clock(4, 1_000, &[10.0, 100.0], Arc::new(MockClock::new()));
    w.observe(10.0);
    w.observe(10.0 + f64::EPSILON * 16.0);
    w.observe(100.0);
    w.observe(101.0);
    assert_eq!(w.snapshot().counts, vec![1, 2, 1]);
}

#[test]
fn concurrent_observe_while_snapshotting_never_tears() {
    use hotspot_telemetry::{MockClock, WindowedHistogram};
    const WRITERS: usize = 8;
    const PER_WRITER: usize = 500;
    let clock = Arc::new(MockClock::new());
    let w = Arc::new(WindowedHistogram::with_clock(
        8,
        1_000_000_000,
        &[1.0, 10.0, 100.0],
        clock,
    ));
    // Writers record through rayon while the main thread snapshots
    // continuously; with a frozen clock nothing can expire, so every
    // snapshot must be internally consistent (counts sum to count) and
    // monotonically growing.
    let snapshotter = {
        let w = Arc::clone(&w);
        std::thread::spawn(move || {
            let mut last = 0u64;
            while last < (WRITERS * PER_WRITER) as u64 {
                let snap = w.snapshot();
                let bucket_sum: u64 = snap.counts.iter().sum();
                assert_eq!(bucket_sum, snap.count, "torn snapshot");
                assert!(snap.count >= last, "count went backwards");
                last = snap.count;
            }
        })
    };
    (0..WRITERS).collect::<Vec<_>>().par_iter().for_each(|&t| {
        for i in 0..PER_WRITER {
            w.observe(((t * PER_WRITER + i) % 150) as f64);
        }
    });
    snapshotter.join().expect("snapshot thread");
    let snap = w.snapshot();
    assert_eq!(snap.count, (WRITERS * PER_WRITER) as u64);
    assert_eq!(w.rate_per_sec(), snap.count as f64 / 8.0, "8s window");
}

#[test]
fn global_registry_accumulates_training_counters() {
    let _guard = global_lock();
    let registry = metrics::global();
    let before = registry.counter("train_epochs_total").get();
    let clips = toy_clips(16, 32);
    let mut cfg = BnnTrainConfig::fast();
    cfg.epochs = 2;
    cfg.bias_epochs = 0;
    let mut det = BnnDetector::new(cfg);
    det.try_fit(&clips).expect("train");
    let after = registry.counter("train_epochs_total").get();
    assert_eq!(after - before, 2, "two epochs counted");
    assert!(registry
        .to_prometheus()
        .contains("# TYPE train_epochs_total counter"));
}
