//! Cross-detector consistency checks and BNN-specific invariants.

use hotspot_bnn::{sign_tensor, xnor_conv2d, BitFilter, BitTensor, NetConfig};
use hotspot_core::{
    BitImage, BnnDetector, BnnTrainConfig, HotspotDetector, InferencePath, LabeledClip,
    PatternFamily, ScalingMode,
};
use hotspot_tensor::{conv2d, Tensor};

fn stripes(step: usize, phase: usize, side: usize) -> BitImage {
    let mut img = BitImage::new(side, side);
    let mut y = phase;
    while y < side {
        img.fill_row_span(y, 0, side);
        y += step;
    }
    img
}

fn stripe_clips(n: usize) -> Vec<LabeledClip> {
    (0..n)
        .map(|i| {
            let hotspot = i % 2 == 0;
            LabeledClip {
                image: stripes(if hotspot { 4 } else { 12 }, i % 3, 32),
                hotspot,
                family: PatternFamily::LineSpace,
            }
        })
        .collect()
}

/// The XNOR kernel agrees with the float sign-convolution on large
/// random instances — the foundational equivalence behind the packed
/// engine (checked here at integration scale; unit tests cover small
/// shapes).
#[test]
fn xnor_kernel_matches_float_at_scale() {
    let mut state = 99u32;
    let mut fill = |shape: &[usize]| {
        let numel: usize = shape.iter().product();
        Tensor::from_vec(
            shape,
            (0..numel)
                .map(|_| {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    (state >> 16) as f32 / 32768.0 - 1.0
                })
                .collect(),
        )
    };
    let x = fill(&[2, 96, 32, 32]);
    let w = fill(&[16, 96, 3, 3]);
    let expect = conv2d(&sign_tensor(&x), &sign_tensor(&w), None, 1, 1);
    let got = xnor_conv2d(
        &BitTensor::from_tensor(&x),
        &BitFilter::from_tensor(&w),
        1,
        1,
    );
    assert_eq!(got.shape(), expect.shape());
    for (a, b) in got.as_slice().iter().zip(expect.as_slice()) {
        assert!((a - b).abs() < 1e-2, "{a} vs {b}");
    }
}

/// Configured inference path is what predict_batch uses.
#[test]
fn inference_path_switch_is_respected() {
    let clips = stripe_clips(24);
    let images: Vec<_> = clips.iter().map(|c| &c.image).collect();

    let mut packed_cfg = BnnTrainConfig::fast();
    packed_cfg.inference = InferencePath::Packed;
    let mut det = BnnDetector::new(packed_cfg);
    det.fit(&clips);
    let via_trait = det.predict_batch(&images);
    let direct = det.predict_batch_packed(&images);
    assert_eq!(via_trait, direct);

    let mut float_cfg = BnnTrainConfig::fast();
    float_cfg.inference = InferencePath::Float;
    let mut det = BnnDetector::new(float_cfg);
    det.fit(&clips);
    let via_trait = det.predict_batch(&images);
    let direct = det.predict_batch_float(&images);
    assert_eq!(via_trait, direct);
}

/// All three scaling modes train on the toy problem; the scaled modes
/// should not be catastrophically worse than each other (the paper's
/// §3.2 argument is about fine accuracy differences at scale).
#[test]
fn every_scaling_mode_learns_the_toy_problem() {
    let clips = stripe_clips(40);
    let images: Vec<_> = clips.iter().map(|c| &c.image).collect();
    for mode in [
        ScalingMode::PlainSign,
        ScalingMode::Shared,
        ScalingMode::PerChannel,
    ] {
        let mut cfg = BnnTrainConfig::fast();
        cfg.net = NetConfig {
            scaling: mode,
            ..NetConfig::tiny(32)
        };
        cfg.inference = InferencePath::Float;
        // Per-channel scaling amplifies early gradients (the scale map
        // multiplies both passes); it needs a gentler learning rate.
        cfg.learning_rate = 0.01;
        cfg.epochs = 16;
        let mut det = BnnDetector::new(cfg);
        det.fit(&clips);
        let preds = det.predict_batch(&images);
        let correct = preds
            .iter()
            .zip(&clips)
            .filter(|(p, c)| **p == c.hotspot)
            .count();
        assert!(
            correct >= 28,
            "{mode:?}: only {correct}/40 on the training set"
        );
    }
}

/// The flip augmentation is label-preserving end to end: a trained
/// detector sees flipped clips as the same distribution (predictions on
/// flipped test clips match predictions on the originals for a
/// clearly-separated toy problem).
#[test]
fn predictions_stable_under_flips() {
    let clips = stripe_clips(40);
    let mut cfg = BnnTrainConfig::fast();
    cfg.augment = true;
    let mut det = BnnDetector::new(cfg);
    det.fit(&clips);
    let images: Vec<_> = clips.iter().map(|c| &c.image).collect();
    let flipped: Vec<_> = images.iter().map(|i| i.flip_horizontal()).collect();
    let a = det.predict_batch(&images);
    let b = det.predict_batch(&flipped.iter().collect::<Vec<_>>());
    let agree = a.iter().zip(&b).filter(|(x, y)| x == y).count();
    assert!(agree >= 36, "only {agree}/40 stable under horizontal flip");
}
